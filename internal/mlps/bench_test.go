package mlps

import "testing"

// BenchmarkGradient measures one mini-batch gradient (batch 100, the Adam
// configuration's per-step worker cost).
func BenchmarkGradient(b *testing.B) {
	d := SyntheticMNIST(1, 500)
	m := NewModel()
	g := NewGrad()
	batch := make([]int, 100)
	for i := range batch {
		batch[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Gradient(d, batch, g)
	}
}

// BenchmarkUpdatedIndices measures the transmitted-update extraction.
func BenchmarkUpdatedIndices(b *testing.B) {
	d := SyntheticMNIST(1, 500)
	m := NewModel()
	g := NewGrad()
	batch := []int{0, 1, 2}
	m.Gradient(d, batch, g)
	var idx []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx = g.UpdatedIndices(0.07, idx)
	}
	_ = idx
}

// BenchmarkAdamStep measures one full-tensor Adam update.
func BenchmarkAdamStep(b *testing.B) {
	d := SyntheticMNIST(1, 200)
	m := NewModel()
	opt := NewAdam(0.01)
	g := NewGrad()
	m.Gradient(d, []int{0, 1, 2, 3}, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(m, g)
	}
}

// BenchmarkSyntheticMNIST measures dataset generation throughput.
func BenchmarkSyntheticMNIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SyntheticMNIST(uint64(i), 100)
	}
}
