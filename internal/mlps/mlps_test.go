package mlps

import (
	"math"
	"testing"
	"testing/quick"
)

func testDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	return SyntheticMNIST(1, n)
}

func TestDatasetShape(t *testing.T) {
	d := testDataset(t, 500)
	if d.Len() != 500 {
		t.Fatalf("len %d", d.Len())
	}
	for i, img := range d.Images {
		if len(img) != Pixels {
			t.Fatalf("image %d has %d pixels", i, len(img))
		}
		if d.Labels[i] < 0 || d.Labels[i] >= Classes {
			t.Fatalf("label %d", d.Labels[i])
		}
		for p, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %d value %f", p, v)
			}
		}
	}
}

func TestDatasetBorderDead(t *testing.T) {
	d := testDataset(t, 300)
	for _, img := range d.Images {
		for y := 0; y < Side; y++ {
			for x := 0; x < Side; x++ {
				if x < 3 || x >= Side-3 || y < 3 || y >= Side-3 {
					if img[y*Side+x] != 0 {
						t.Fatalf("border pixel (%d,%d) active", x, y)
					}
				}
			}
		}
	}
}

func TestDatasetSparsityBand(t *testing.T) {
	d := testDataset(t, 1000)
	s := d.Sparsity()
	// The calibrated generator produces ~10% active pixels (MNIST is ~19%;
	// the difference is deliberate — see EXPERIMENTS.md).
	if s < 0.05 || s > 0.25 {
		t.Fatalf("sparsity %.3f outside sanity band", s)
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := SyntheticMNIST(9, 50)
	b := SyntheticMNIST(9, 50)
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ")
		}
		for p := range a.Images[i] {
			if a.Images[i][p] != b.Images[i][p] {
				t.Fatal("pixels differ")
			}
		}
	}
	c := SyntheticMNIST(10, 50)
	same := true
	for i := range a.Images {
		for p := range a.Images[i] {
			if a.Images[i][p] != c.Images[i][p] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds give identical data")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Different classes must have visibly different activation maps or the
	// model has nothing to learn.
	d := testDataset(t, 10)
	var diff float64
	for i := 0; i < Pixels; i++ {
		diff += math.Abs(d.ClassProb[0][i] - d.ClassProb[1][i])
	}
	if diff < 10 {
		t.Fatalf("class probability maps nearly identical (L1=%f)", diff)
	}
}

func TestForwardIsDistribution(t *testing.T) {
	d := testDataset(t, 10)
	m := NewModel()
	p := m.Forward(d.Images[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob %f", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %f", sum)
	}
	// Zero model: uniform distribution.
	for _, v := range p {
		if math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("zero model must be uniform, got %f", v)
		}
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	d := testDataset(t, 20)
	m := NewModel()
	// Non-trivial weights.
	for i := range m.W {
		m.W[i] = float32(math.Sin(float64(i))) * 0.1
	}
	g := NewGrad()
	batch := []int{0, 1, 2}
	loss := m.Gradient(d, batch, g)
	if loss <= 0 {
		t.Fatalf("loss %f", loss)
	}
	// Check ∂loss/∂W numerically at a handful of active coordinates.
	const eps = 1e-3
	checked := 0
	for i := 0; i < WeightDim && checked < 5; i++ {
		if g.W[i] == 0 {
			continue
		}
		orig := m.W[i]
		m.W[i] = orig + eps
		lossPlus := meanLoss(m, d, batch)
		m.W[i] = orig - eps
		lossMinus := meanLoss(m, d, batch)
		m.W[i] = orig
		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-float64(g.W[i])) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("grad[%d]=%f numeric=%f", i, g.W[i], numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no non-zero gradient coordinates to check")
	}
}

func meanLoss(m *Model, d *Dataset, batch []int) float64 {
	var loss float64
	for _, s := range batch {
		p := m.Forward(d.Images[s])
		loss += -math.Log(math.Max(p[d.Labels[s]], 1e-12))
	}
	return loss / float64(len(batch))
}

func TestGradientSparsityMatchesInput(t *testing.T) {
	d := testDataset(t, 10)
	m := NewModel()
	g := NewGrad()
	m.Gradient(d, []int{0}, g)
	x := d.Images[0]
	for i := 0; i < Pixels; i++ {
		rowZero := true
		for j := 0; j < Classes; j++ {
			if g.W[i*Classes+j] != 0 {
				rowZero = false
			}
		}
		if x[i] == 0 && !rowZero {
			t.Fatalf("inactive pixel %d has gradient", i)
		}
		if x[i] != 0 && rowZero {
			t.Fatalf("active pixel %d has zero gradient row", i)
		}
	}
}

func TestUpdatedIndices(t *testing.T) {
	g := NewGrad()
	g.W[5] = 1.0
	g.W[17] = 0.005
	g.W[100] = -0.5
	idx := g.UpdatedIndices(0, nil)
	if len(idx) != 3 {
		t.Fatalf("exact support: %v", idx)
	}
	idx = g.UpdatedIndices(0.1, idx) // threshold 0.1*1.0
	if len(idx) != 2 {
		t.Fatalf("thresholded support: %v", idx)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	d := testDataset(t, 1500)
	cfg := Figure1aConfig(3)
	cfg.Steps = 120
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Metrics[0].Loss
	last := res.Metrics[len(res.Metrics)-1].Loss
	if last >= first/2 {
		t.Fatalf("SGD loss %f -> %f: not learning", first, last)
	}
	if res.FinalAccuracy < 0.8 {
		t.Fatalf("accuracy %.2f", res.FinalAccuracy)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	d := testDataset(t, 1500)
	cfg := Figure1bConfig(3)
	cfg.Steps = 60
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Metrics[0].Loss
	last := res.Metrics[len(res.Metrics)-1].Loss
	if last >= first/2 {
		t.Fatalf("Adam loss %f -> %f: not learning", first, last)
	}
}

func TestFigure1Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	d := testDataset(t, 4000)
	sgd, err := Train(d, Figure1aConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	adam, err := Train(d, Figure1bConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	so := MeanOverlap(sgd.Metrics)
	ao := MeanOverlap(adam.Metrics)
	// Paper: ~42.5% (SGD) and ~66.5% (Adam); allow a generous band.
	if so < 34 || so > 52 {
		t.Fatalf("SGD overlap %.1f%% outside [34, 52]", so)
	}
	if ao < 58 || ao > 75 {
		t.Fatalf("Adam overlap %.1f%% outside [58, 75]", ao)
	}
	if ao <= so {
		t.Fatalf("ordering violated: adam %.1f <= sgd %.1f", ao, so)
	}
}

func TestOverlapGrowsWithWorkers(t *testing.T) {
	d := testDataset(t, 2000)
	prev := -1.0
	for _, w := range []int{2, 3, 4, 5} {
		cfg := Figure1aConfig(7)
		cfg.Workers = w
		cfg.Steps = 60
		res, err := Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		o := MeanOverlap(res.Metrics)
		if o <= prev {
			t.Fatalf("overlap not increasing: %d workers -> %.1f (prev %.1f)", w, o, prev)
		}
		prev = o
	}
}

func TestTrainValidation(t *testing.T) {
	d := testDataset(t, 10)
	if _, err := Train(d, TrainConfig{}); err == nil {
		t.Fatal("zero config must fail")
	}
	if _, err := Train(d, TrainConfig{Workers: 5, BatchSize: 100, Steps: 1}); err == nil {
		t.Fatal("dataset too small must fail")
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := testDataset(t, 600)
	cfg := Figure1aConfig(5)
	cfg.Steps = 20
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Metrics {
		if a.Metrics[i] != b.Metrics[i] {
			t.Fatalf("metrics diverge at step %d", i)
		}
	}
}

// Property: overlap and traffic reduction are valid percentages, and unique
// <= total always.
func TestMetricsInvariantsProperty(t *testing.T) {
	d := testDataset(t, 800)
	f := func(seed uint16, workersRaw, batchRaw uint8) bool {
		cfg := TrainConfig{
			Workers:   1 + int(workersRaw)%5,
			BatchSize: 1 + int(batchRaw)%20,
			Steps:     5,
			Optimizer: OptSGD,
			LR:        0.1,
			Seed:      uint64(seed),
		}
		res, err := Train(d, cfg)
		if err != nil {
			return false
		}
		for _, m := range res.Metrics {
			if m.OverlapPct < 0 || m.OverlapPct > 100 {
				return false
			}
			if m.TrafficReductionPct < 0 || m.TrafficReductionPct > 100 {
				return false
			}
			if m.UniqueUpdates > m.TotalUpdates {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamStateEvolves(t *testing.T) {
	a := NewAdam(0.01)
	m := NewModel()
	g := NewGrad()
	g.W[0] = 1
	a.Step(m, g)
	w1 := m.W[0]
	if w1 >= 0 {
		t.Fatalf("adam step direction: %f", w1)
	}
	a.Step(m, g)
	if m.W[0] >= w1 {
		t.Fatal("adam second step did not move")
	}
	if a.Name() != "adam" || (&SGD{}).Name() != "sgd" {
		t.Fatal("names")
	}
}
