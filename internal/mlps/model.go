package mlps

import (
	"math"
)

// Model is the paper's "Soft-Max Neural Network": multinomial logistic
// regression, a single dense W (784×10) plus bias. W is "the tensor" whose
// update overlap Figure 1 measures.
type Model struct {
	W []float32 // WeightDim, row-major: W[pixel*Classes + class]
	B []float32 // Classes
}

// NewModel returns a zero-initialized model (softmax regression is convex;
// zero init is standard).
func NewModel() *Model {
	return &Model{W: make([]float32, WeightDim), B: make([]float32, Classes)}
}

// Forward computes class probabilities for one image.
func (m *Model) Forward(x []float32) [Classes]float64 {
	var logits [Classes]float64
	for j := 0; j < Classes; j++ {
		logits[j] = float64(m.B[j])
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		base := i * Classes
		for j := 0; j < Classes; j++ {
			logits[j] += float64(xi) * float64(m.W[base+j])
		}
	}
	// Numerically stable softmax.
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	var probs [Classes]float64
	for j := range logits {
		probs[j] = math.Exp(logits[j] - maxL)
		sum += probs[j]
	}
	for j := range probs {
		probs[j] /= sum
	}
	return probs
}

// Predict returns the argmax class for one image.
func (m *Model) Predict(x []float32) int {
	p := m.Forward(x)
	best := 0
	for j := 1; j < Classes; j++ {
		if p[j] > p[best] {
			best = j
		}
	}
	return best
}

// Grad is one worker's gradient contribution: dense storage, but the
// sparsity structure (zero rows for inactive pixels) is preserved exactly.
type Grad struct {
	W []float32
	B []float32
}

// NewGrad allocates a zero gradient.
func NewGrad() *Grad {
	return &Grad{W: make([]float32, WeightDim), B: make([]float32, Classes)}
}

// Reset zeroes the gradient in place.
func (g *Grad) Reset() {
	for i := range g.W {
		g.W[i] = 0
	}
	for i := range g.B {
		g.B[i] = 0
	}
}

// Accumulate adds other into g (the parameter server's vector addition —
// the aggregation function the paper offloads to the network).
func (g *Grad) Accumulate(other *Grad) {
	for i, v := range other.W {
		g.W[i] += v
	}
	for i, v := range other.B {
		g.B[i] += v
	}
}

// Scale multiplies the gradient by f.
func (g *Grad) Scale(f float32) {
	for i := range g.W {
		g.W[i] *= f
	}
	for i := range g.B {
		g.B[i] *= f
	}
}

// Gradient computes the mean cross-entropy gradient over the given sample
// indices, writing into g (which it resets first), and returns the mean
// loss. dW[i][j] = x[i]*(p[j]-y[j]): rows for inactive pixels stay exactly
// zero, which is what makes the update sparse on the wire.
func (m *Model) Gradient(d *Dataset, batch []int, g *Grad) float64 {
	g.Reset()
	if len(batch) == 0 {
		return 0
	}
	var loss float64
	inv := 1.0 / float64(len(batch))
	for _, s := range batch {
		x := d.Images[s]
		label := d.Labels[s]
		probs := m.Forward(x)
		loss += -math.Log(math.Max(probs[label], 1e-12))
		var delta [Classes]float64
		for j := 0; j < Classes; j++ {
			delta[j] = probs[j]
			if j == label {
				delta[j] -= 1
			}
		}
		for i, xi := range x {
			if xi == 0 {
				continue
			}
			base := i * Classes
			for j := 0; j < Classes; j++ {
				g.W[base+j] += float32(float64(xi) * delta[j] * inv)
			}
		}
		for j := 0; j < Classes; j++ {
			g.B[j] += float32(delta[j] * inv)
		}
	}
	return loss * inv
}

// UpdatedIndices returns the W-tensor indices this gradient would transmit
// to the parameter server: elements whose magnitude exceeds relThreshold ×
// max|g.W|. A zero threshold returns the exact non-zero support. This is
// the "tensor elements updated by a worker" set of Figure 1.
func (g *Grad) UpdatedIndices(relThreshold float64, out []int) []int {
	out = out[:0]
	if relThreshold <= 0 {
		for i, v := range g.W {
			if v != 0 {
				out = append(out, i)
			}
		}
		return out
	}
	var maxAbs float64
	for _, v := range g.W {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	thr := relThreshold * maxAbs
	for i, v := range g.W {
		if math.Abs(float64(v)) > thr {
			out = append(out, i)
		}
	}
	return out
}
