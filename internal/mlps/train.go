package mlps

import (
	"fmt"
	"math/rand"

	"github.com/daiet/daiet/internal/hashing"
)

// TrainConfig parameterizes the distributed training run. The zero value is
// not valid; use Figure1aConfig/Figure1bConfig or fill explicitly.
type TrainConfig struct {
	Workers   int
	BatchSize int
	Steps     int
	Optimizer OptimizerKind
	LR        float64
	Seed      uint64
	// RelThreshold is the relative magnitude below which a gradient element
	// is treated as not-updated when computing the transmitted-update set
	// (it never affects training itself, which always applies the exact
	// aggregated gradient). See EXPERIMENTS.md for the calibration note.
	RelThreshold float64
}

// Figure1aConfig is the paper's SGD setup: mini-batch of 3, five workers.
func Figure1aConfig(seed uint64) TrainConfig {
	return TrainConfig{
		Workers: 5, BatchSize: 3, Steps: 200,
		Optimizer: OptSGD, LR: 0.5, Seed: seed,
		RelThreshold: 0.07,
	}
}

// Figure1bConfig is the paper's Adam setup: mini-batch of 100, five
// workers. The relative threshold separates meaningful updates from
// noise-level elements in the large-batch gradient.
func Figure1bConfig(seed uint64) TrainConfig {
	return TrainConfig{
		Workers: 5, BatchSize: 100, Steps: 200,
		Optimizer: OptAdam, LR: 0.01, Seed: seed,
		RelThreshold: 0.115,
	}
}

// StepMetrics is one training step's measurements: the loss plus the
// overlap statistic Figure 1 plots.
type StepMetrics struct {
	Step int
	Loss float64
	// OverlapPct is 100 × |elements updated by >=2 workers| / |elements
	// updated by >=1 worker| — the paper's overlap definition.
	OverlapPct float64
	// TrafficReductionPct is 100 × (1 - unique/total): the share of update
	// traffic in-network aggregation would absorb this step.
	TrafficReductionPct float64
	TotalUpdates        int // sum over workers of transmitted elements
	UniqueUpdates       int // distinct elements across workers
}

// TrainResult bundles the series and the final model.
type TrainResult struct {
	Config  TrainConfig
	Metrics []StepMetrics
	Model   *Model
	// FinalAccuracy is measured on held-out samples.
	FinalAccuracy float64
}

// Train runs synchronous data-parallel training: each step, every worker
// computes a gradient on its own mini-batch; the parameter server sums the
// contributions (the aggregation DAIET offloads), averages, and applies the
// optimizer. Update overlap is measured on the per-worker transmitted sets.
func Train(d *Dataset, cfg TrainConfig) (*TrainResult, error) {
	if cfg.Workers < 1 || cfg.BatchSize < 1 || cfg.Steps < 1 {
		return nil, fmt.Errorf("mlps: invalid config %+v", cfg)
	}
	if d.Len() < cfg.Workers*cfg.BatchSize {
		return nil, fmt.Errorf("mlps: dataset of %d too small for %d workers × batch %d",
			d.Len(), cfg.Workers, cfg.BatchSize)
	}
	model := NewModel()
	var opt Optimizer
	switch cfg.Optimizer {
	case OptAdam:
		opt = NewAdam(cfg.LR)
	default:
		opt = NewSGD(cfg.LR)
	}

	// Shard the dataset across workers, MNIST-style data parallelism.
	shards := make([][]int, cfg.Workers)
	for i := 0; i < d.Len(); i++ {
		w := i % cfg.Workers
		shards[w] = append(shards[w], i)
	}
	rngs := make([]*rand.Rand, cfg.Workers)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(int64(hashing.Mix64(cfg.Seed ^ uint64(w+1)<<40))))
	}

	res := &TrainResult{Config: cfg, Model: model}
	grads := make([]*Grad, cfg.Workers)
	for w := range grads {
		grads[w] = NewGrad()
	}
	agg := NewGrad()
	counts := make([]uint8, WeightDim)
	idxScratch := make([]int, 0, WeightDim)

	for step := 0; step < cfg.Steps; step++ {
		var stepLoss float64
		for i := range counts {
			counts[i] = 0
		}
		for w := 0; w < cfg.Workers; w++ {
			batch := sampleBatch(rngs[w], shards[w], cfg.BatchSize)
			stepLoss += model.Gradient(d, batch, grads[w])
			idxScratch = grads[w].UpdatedIndices(cfg.RelThreshold, idxScratch)
			for _, idx := range idxScratch {
				if counts[idx] < 255 {
					counts[idx]++
				}
			}
		}
		// Overlap statistics.
		var once, multi, total int
		for _, c := range counts {
			if c == 0 {
				continue
			}
			once++
			if c >= 2 {
				multi++
			}
			total += int(c)
		}
		m := StepMetrics{Step: step, Loss: stepLoss / float64(cfg.Workers)}
		if once > 0 {
			m.OverlapPct = 100 * float64(multi) / float64(once)
			m.UniqueUpdates = once
			m.TotalUpdates = total
			m.TrafficReductionPct = 100 * (1 - float64(once)/float64(total))
		}
		res.Metrics = append(res.Metrics, m)

		// Parameter-server aggregation (sum) and optimizer step on the
		// mean gradient.
		agg.Reset()
		for w := 0; w < cfg.Workers; w++ {
			agg.Accumulate(grads[w])
		}
		agg.Scale(1 / float32(cfg.Workers))
		opt.Step(model, agg)
	}

	// Accuracy on a deterministic holdout slice (last 10%).
	hold := d.Len() / 10
	correct := 0
	for i := d.Len() - hold; i < d.Len(); i++ {
		if model.Predict(d.Images[i]) == d.Labels[i] {
			correct++
		}
	}
	if hold > 0 {
		res.FinalAccuracy = float64(correct) / float64(hold)
	}
	return res, nil
}

func sampleBatch(rng *rand.Rand, shard []int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = shard[rng.Intn(len(shard))]
	}
	return out
}

// MeanOverlap averages the overlap series (the single number the paper
// quotes: "around 42.5% and 66.5%").
func MeanOverlap(ms []StepMetrics) float64 {
	if len(ms) == 0 {
		return 0
	}
	var s float64
	for _, m := range ms {
		s += m.OverlapPct
	}
	return s / float64(len(ms))
}
