// Package mlps reproduces the paper's machine-learning analysis (Figures
// 1(a) and 1(b)): a Soft-Max neural network trained with mini-batch SGD
// (batch 3) and Adam (batch 100) on MNIST across five workers and one
// parameter server, instrumented to measure the overlap of tensor updates
// across workers — the quantity that upper-bounds in-network aggregation's
// traffic reduction for ML workloads.
//
// MNIST itself is a data gate (the module is offline), so the package
// generates a synthetic handwritten-digit substitute calibrated to the
// properties the overlap metric actually depends on: 28×28 images, 10
// classes, a dead border, centre-heavy pixel activation, class-conditional
// stroke structure, and MNIST-like per-image sparsity (~19% of pixels
// active). See DESIGN.md's substitution table.
package mlps

import (
	"math"
	"math/rand"

	"github.com/daiet/daiet/internal/hashing"
)

// Image geometry.
const (
	Side      = 28
	Pixels    = Side * Side // 784
	Classes   = 10
	WeightDim = Pixels * Classes // the W tensor the workers update
)

// Dataset is a set of labelled images. Pixel values are in [0, 1]; the
// sparsity structure (which pixels are non-zero) is what drives Figure 1.
type Dataset struct {
	Images [][]float32
	Labels []int
	// ClassProb[c][i] is the probability pixel i is active in an image of
	// class c (exposed for tests and calibration).
	ClassProb [][]float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// strokeSegment is one straight pen stroke in the 28x28 grid.
type strokeSegment struct {
	x0, y0, x1, y1 float64
}

// classStrokes samples a class's pen strokes: a handful of segments with
// endpoints in the writable area. Distinct classes get geometrically
// distinct (though intersecting) strokes, which is what keeps the SGD
// small-batch update overlap in the paper's 34-50% band: a mini-batch of 3
// activates only a few classes' strokes, so workers mostly touch disjoint
// rows of W.
func classStrokes(rng *rand.Rand, n int) []strokeSegment {
	out := make([]strokeSegment, 0, n)
	for len(out) < n {
		s := strokeSegment{
			x0: 4 + rng.Float64()*19,
			y0: 4 + rng.Float64()*19,
			x1: 4 + rng.Float64()*19,
			y1: 4 + rng.Float64()*19,
		}
		dx, dy := s.x1-s.x0, s.y1-s.y0
		if dx*dx+dy*dy < 64 { // insist on strokes at least 8px long
			continue
		}
		out = append(out, s)
	}
	return out
}

// SyntheticMNIST generates n samples with MNIST-like activation structure.
// Generation is deterministic per seed.
func SyntheticMNIST(seed uint64, n int) *Dataset {
	rng := rand.New(rand.NewSource(int64(hashing.Mix64(seed))))
	d := &Dataset{ClassProb: make([][]float64, Classes)}

	// Build per-class activation probabilities.
	for c := 0; c < Classes; c++ {
		prob := make([]float64, Pixels)
		classRng := rand.New(rand.NewSource(int64(hashing.Mix64(seed ^ uint64(c)<<32))))
		strokes := classStrokes(classRng, 5)
		for y := 0; y < Side; y++ {
			for x := 0; x < Side; x++ {
				i := y*Side + x
				// Dead border, like MNIST's empty frame.
				if x < 3 || x >= Side-3 || y < 3 || y >= Side-3 {
					prob[i] = 0
					continue
				}
				// Distance to the nearest selected stroke.
				minD := math.Inf(1)
				for _, s := range strokes {
					if dd := distToSegment(float64(x), float64(y), s); dd < minD {
						minD = dd
					}
				}
				switch {
				case minD <= 0.8:
					prob[i] = 0.60 // on-stroke: usually inked
				case minD <= 1.8:
					prob[i] = 0.18 // stroke halo: jittered ink
				case minD <= 3.2:
					prob[i] = 0.03 // faint smudge
				default:
					prob[i] = 0.005 // rare noise speckle
				}
			}
		}
		d.ClassProb[c] = prob
	}

	for s := 0; s < n; s++ {
		c := rng.Intn(Classes)
		img := make([]float32, Pixels)
		prob := d.ClassProb[c]
		for i := 0; i < Pixels; i++ {
			if prob[i] > 0 && rng.Float64() < prob[i] {
				img[i] = float32(0.35 + 0.65*rng.Float64())
			}
		}
		d.Images = append(d.Images, img)
		d.Labels = append(d.Labels, c)
	}
	return d
}

// distToSegment is the Euclidean distance from point (px, py) to segment s.
func distToSegment(px, py float64, s strokeSegment) float64 {
	dx, dy := s.x1-s.x0, s.y1-s.y0
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(px-s.x0, py-s.y0)
	}
	t := ((px-s.x0)*dx + (py-s.y0)*dy) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(px-(s.x0+t*dx), py-(s.y0+t*dy))
}

// Sparsity returns the mean fraction of active pixels per image.
func (d *Dataset) Sparsity() float64 {
	if d.Len() == 0 {
		return 0
	}
	var total int
	for _, img := range d.Images {
		for _, v := range img {
			if v != 0 {
				total++
			}
		}
	}
	return float64(total) / float64(d.Len()*Pixels)
}
