package mlps

import "math"

// OptimizerKind selects the parameter-server update rule.
type OptimizerKind int

// The two optimizers the paper evaluates.
const (
	OptSGD OptimizerKind = iota
	OptAdam
)

// String implements fmt.Stringer.
func (k OptimizerKind) String() string {
	if k == OptAdam {
		return "adam"
	}
	return "sgd"
}

// Optimizer applies aggregated gradients to the model, parameter-server
// side.
type Optimizer interface {
	Step(m *Model, g *Grad)
	Name() string
}

// SGD is plain mini-batch stochastic gradient descent.
type SGD struct {
	LR float64
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step applies w -= lr * g.
func (s *SGD) Step(m *Model, g *Grad) {
	lr := float32(s.LR)
	for i, v := range g.W {
		m.W[i] -= lr * v
	}
	for i, v := range g.B {
		m.B[i] -= lr * v
	}
}

// Adam implements Kingma & Ba's Adam exactly (the paper's [17]):
// first/second-moment estimates with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t      int
	mW, vW []float64
	mB, vB []float64
}

// NewAdam returns Adam with the canonical defaults (lr as given,
// β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		mW:      make([]float64, WeightDim),
		vW:      make([]float64, WeightDim),
		mB:      make([]float64, Classes),
		vB:      make([]float64, Classes),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step applies one Adam update.
func (a *Adam) Step(m *Model, g *Grad) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(w []float32, grad []float32, mo, vo []float64) {
		for i := range grad {
			gi := float64(grad[i])
			mo[i] = a.Beta1*mo[i] + (1-a.Beta1)*gi
			vo[i] = a.Beta2*vo[i] + (1-a.Beta2)*gi*gi
			mHat := mo[i] / c1
			vHat := vo[i] / c2
			w[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon))
		}
	}
	upd(m.W, g.W, a.mW, a.vW)
	upd(m.B, g.B, a.mB, a.vB)
}
