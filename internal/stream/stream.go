// Package stream is the fourth partition/aggregate workload class the
// paper names (§1: "big data analytics ... machine learning, graph
// processing and stream processing"): continuous windowed aggregation in
// the style of Storm/StreamScope. Worker tasks consume shards of an event
// stream; every tumbling window they emit per-key partial aggregates
// toward a sink, and the fabric combines them in-flight — one DAIET round
// per window, reusing the same aggregation tree.
//
// Windows map onto the reliability extension's epochs, so consecutive
// windows are cleanly separated on the wire even under retransmission.
package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// Event is one element of the stream.
type Event struct {
	Key   string
	Value uint32
}

// GenerateEvents produces a synthetic metric stream: keys drawn from a
// fixed vocabulary with a hot-key skew typical of telemetry streams.
func GenerateEvents(seed uint64, vocab, n int) []Event {
	rng := rand.New(rand.NewSource(int64(hashing.Mix64(seed ^ 0x57ea))))
	keys := make([]string, vocab)
	for i := range keys {
		keys[i] = fmt.Sprintf("metric-%04d", i)
	}
	out := make([]Event, n)
	for i := range out {
		// Square the uniform draw: low indices become hot keys.
		f := rng.Float64()
		idx := int(f * f * float64(vocab))
		if idx >= vocab {
			idx = vocab - 1
		}
		out[i] = Event{Key: keys[idx], Value: uint32(rng.Intn(100))}
	}
	return out
}

// JobConfig sizes a streaming job.
type JobConfig struct {
	Workers    int            // stream tasks (default 4)
	WindowSize int            // events per worker per tumbling window (default 256)
	Agg        core.AggFuncID // default AggSum
	TableSize  int            // per-tree register cells (default 4096)
	Seed       uint64
	// Loss injects frame loss on worker uplinks; windows then rely on the
	// reliability extension (epoch = window number).
	Loss float64
	// Reliable toggles the loss-recovery protocol (required when Loss > 0).
	Reliable bool
}

func (c JobConfig) withDefaults() JobConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.WindowSize == 0 {
		c.WindowSize = 256
	}
	if c.Agg == 0 {
		c.Agg = core.AggSum
	}
	if c.TableSize == 0 {
		c.TableSize = 4096
	}
	return c
}

// WindowReport is one window's outcome at the sink.
type WindowReport struct {
	Window        int
	PairsSent     uint64 // per-key partials emitted by all workers
	PairsReceived uint64 // pairs reaching the sink after in-network combining
	ReductionPct  float64
	UniqueKeys    int
	Retransmits   uint64 // reliability-extension activity (0 when loss-free)
}

// Job is a running streaming topology: workers, one sink, one tree.
type Job struct {
	cfg  JobConfig
	nw   *netsim.Network
	fab  *topology.Fabric
	ctl  *controller.Controller
	prog map[netsim.NodeID]*core.Program
	host map[netsim.NodeID]*transport.Host

	workers []netsim.NodeID
	sink    netsim.NodeID
	plan    *controller.TreePlan
	muxes   []*core.AckMux
	agg     core.AggFunc
}

// NewJob builds the fabric and installs the (single) aggregation tree
// rooted at the sink.
func NewJob(cfg JobConfig) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Loss > 0 && !cfg.Reliable {
		return nil, fmt.Errorf("stream: loss %v requires Reliable", cfg.Loss)
	}
	agg, err := core.FuncByID(cfg.Agg)
	if err != nil {
		return nil, err
	}
	j := &Job{
		cfg:  cfg,
		nw:   netsim.New(cfg.Seed),
		prog: make(map[netsim.NodeID]*core.Program),
		host: make(map[netsim.NodeID]*transport.Host),
		agg:  agg,
	}
	// Hand-built plan: worker uplinks may be lossy, the sink's link is
	// clean (edge-hop reliability scope; see core/reliable.go).
	sw := topology.SwitchBase
	plan := &topology.Plan{Name: "stream", Switches: []netsim.NodeID{sw}}
	for i := 0; i < cfg.Workers+1; i++ {
		h := topology.HostBase + netsim.NodeID(i)
		plan.Hosts = append(plan.Hosts, h)
		lc := netsim.LinkConfig{QueueBytes: 16 << 20}
		if i < cfg.Workers {
			lc.LossProb = cfg.Loss
		}
		plan.Links = append(plan.Links, topology.Link{A: h, B: sw, Cfg: lc})
	}
	var buildErr error
	j.fab = plan.Realize(j.nw,
		func(id netsim.NodeID) netsim.Node {
			p, err := core.NewProgram(core.ProgramConfig{})
			if err != nil {
				buildErr = err
				p, _ = core.NewProgram(core.ProgramConfig{})
			}
			j.prog[id] = p
			return p.Switch()
		},
		func(id netsim.NodeID) netsim.Node {
			h := transport.NewHost()
			j.host[id] = h
			return h
		})
	if buildErr != nil {
		return nil, buildErr
	}
	j.workers = plan.Hosts[:cfg.Workers]
	j.sink = plan.Hosts[cfg.Workers]
	j.ctl = controller.New(j.fab, j.prog)
	if err := j.ctl.InstallRouting(); err != nil {
		return nil, err
	}

	j.plan, err = j.ctl.PlanTree(j.sink, j.workers)
	if err != nil {
		return nil, err
	}
	senders := make([]uint32, len(j.workers))
	for i, w := range j.workers {
		senders[i] = uint32(w)
	}
	for _, swID := range j.plan.SwitchNodes {
		tc := core.TreeConfig{
			TreeID:    j.plan.TreeID,
			OutPort:   j.fab.PortTo(swID, j.plan.Parent[swID]),
			Children:  j.plan.Children[swID],
			Agg:       cfg.Agg,
			TableSize: cfg.TableSize,
			Reliable:  cfg.Reliable,
			Senders:   senders,
		}
		if err := j.prog[swID].ConfigureTree(tc); err != nil {
			return nil, err
		}
	}
	if cfg.Reliable {
		j.muxes = make([]*core.AckMux, len(j.workers))
		for i, w := range j.workers {
			j.muxes[i] = core.NewAckMux(j.host[w])
		}
	}
	return j, nil
}

// Run consumes the stream: events are sharded round-robin across workers,
// cut into tumbling windows of WindowSize events per worker, and each
// window is aggregated through the fabric. It returns one report per
// window and verifies every window's result against a reference.
func (j *Job) Run(events []Event) ([]WindowReport, error) {
	shards := make([][]Event, j.cfg.Workers)
	for i, ev := range events {
		w := i % j.cfg.Workers
		shards[w] = append(shards[w], ev)
	}
	nWindows := 0
	for _, s := range shards {
		if w := (len(s) + j.cfg.WindowSize - 1) / j.cfg.WindowSize; w > nWindows {
			nWindows = w
		}
	}

	var reports []WindowReport
	for win := 0; win < nWindows; win++ {
		rep, err := j.runWindow(win, shards)
		if err != nil {
			return reports, fmt.Errorf("stream: window %d: %w", win, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runWindow executes one tumbling window as one DAIET round.
func (j *Job) runWindow(win int, shards [][]Event) (WindowReport, error) {
	rep := WindowReport{Window: win}
	col := core.NewCollector(j.plan.TreeID, j.agg, wire.DefaultGeometry, j.plan.RootChildren())
	col.Attach(j.host[j.sink])

	want := make(map[string]uint32)
	var reliableSenders []*core.ReliableSender
	for wi, shard := range shards {
		lo := win * j.cfg.WindowSize
		if lo > len(shard) {
			lo = len(shard)
		}
		hi := lo + j.cfg.WindowSize
		if hi > len(shard) {
			hi = len(shard)
		}
		// Task-local pre-aggregation (the worker-level combiner every
		// streaming engine applies), then ship partials.
		partial := make(map[string]uint32)
		for _, ev := range shard[lo:hi] {
			if cur, ok := partial[ev.Key]; ok {
				partial[ev.Key] = j.agg.Combine(cur, ev.Value)
			} else {
				partial[ev.Key] = j.agg.Combine(j.agg.Identity(), ev.Value)
			}
		}
		for k, v := range partial {
			if cur, ok := want[k]; ok {
				want[k] = j.agg.Combine(cur, v)
			} else {
				want[k] = j.agg.Combine(j.agg.Identity(), v)
			}
		}

		// Ship partials in ascending key order: map iteration order is
		// randomized per range, and send order is frame order on the wire,
		// so an unsorted walk would leak nondeterminism into the run.
		keys := make([]string, 0, len(partial))
		for k := range partial {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		if j.cfg.Reliable {
			s, err := core.NewReliableSender(j.host[j.workers[wi]], j.plan.TreeID, j.sink,
				wire.DefaultGeometry, 0, core.ReliableConfig{
					RTO:   500 * time.Microsecond,
					Epoch: uint8(win + 1), // window number separates rounds
				})
			if err != nil {
				return rep, err
			}
			j.muxes[wi].Register(s)
			for _, k := range keys {
				if err := s.Send([]byte(k), partial[k]); err != nil {
					return rep, err
				}
				rep.PairsSent++
			}
			s.End()
			reliableSenders = append(reliableSenders, s)
		} else {
			s, err := core.NewSender(j.host[j.workers[wi]], j.plan.TreeID, j.sink,
				wire.DefaultGeometry, 0)
			if err != nil {
				return rep, err
			}
			for _, k := range keys {
				if err := s.Send([]byte(k), partial[k]); err != nil {
					return rep, err
				}
				rep.PairsSent++
			}
			s.End()
		}
	}
	if err := j.nw.Run(100_000_000); err != nil {
		return rep, err
	}
	if !col.Complete() {
		return rep, fmt.Errorf("sink incomplete (%+v)", col.Stats)
	}
	got := col.Result()
	if len(got) != len(want) {
		return rep, fmt.Errorf("window result has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			return rep, fmt.Errorf("key %q = %d, want %d", k, got[k], v)
		}
	}
	rep.PairsReceived = col.Stats.PairsReceived
	rep.UniqueKeys = len(got)
	if rep.PairsSent > 0 {
		rep.ReductionPct = 100 * (1 - float64(rep.PairsReceived)/float64(rep.PairsSent))
	}
	for _, s := range reliableSenders {
		rep.Retransmits += s.Stats.Retransmissions
	}
	return rep, nil
}
