package stream

import (
	"testing"

	"github.com/daiet/daiet/internal/core"
)

func TestGenerateEventsShape(t *testing.T) {
	evs := GenerateEvents(1, 100, 5000)
	if len(evs) != 5000 {
		t.Fatalf("len %d", len(evs))
	}
	counts := map[string]int{}
	for _, e := range evs {
		if e.Key == "" {
			t.Fatal("empty key")
		}
		counts[e.Key]++
	}
	if len(counts) < 50 || len(counts) > 100 {
		t.Fatalf("distinct keys %d", len(counts))
	}
	// Hot-key skew: the most frequent key should far exceed the mean.
	max, total := 0, 0
	for _, n := range counts {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Fatalf("no skew: max %d mean %.1f", max, mean)
	}
}

func TestGenerateEventsDeterministic(t *testing.T) {
	a := GenerateEvents(3, 50, 100)
	b := GenerateEvents(3, 50, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestStreamingWindowsLossFree(t *testing.T) {
	job, err := NewJob(JobConfig{Workers: 4, WindowSize: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateEvents(7, 200, 2000)
	reports, err := job.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	// 2000 events / 4 workers = 500 per shard / 100 per window = 5 windows.
	if len(reports) != 5 {
		t.Fatalf("windows %d", len(reports))
	}
	for _, rep := range reports {
		if rep.PairsReceived == 0 || rep.PairsSent == 0 {
			t.Fatalf("empty window %+v", rep)
		}
		if rep.PairsReceived > rep.PairsSent {
			t.Fatalf("negative reduction %+v", rep)
		}
		if rep.Retransmits != 0 {
			t.Fatalf("retransmits on a loss-free run %+v", rep)
		}
		// Hot keys overlap across the 4 workers: in-network combining must
		// shrink the per-window traffic meaningfully.
		if rep.ReductionPct < 20 {
			t.Fatalf("window %d reduction %.1f%% too low", rep.Window, rep.ReductionPct)
		}
	}
}

func TestStreamingWindowsUnderLoss(t *testing.T) {
	job, err := NewJob(JobConfig{
		Workers: 3, WindowSize: 80, Seed: 11, Loss: 0.1, Reliable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateEvents(11, 150, 960)
	reports, err := job.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("windows %d", len(reports))
	}
	var totalRetrans uint64
	for _, rep := range reports {
		totalRetrans += rep.Retransmits
	}
	if totalRetrans == 0 {
		t.Fatal("no retransmissions at 10% loss")
	}
	// Run verifies per-window exactness internally; reaching here means all
	// four windows were exact despite the loss.
}

func TestStreamingValidation(t *testing.T) {
	if _, err := NewJob(JobConfig{Loss: 0.1}); err == nil {
		t.Fatal("loss without Reliable must fail")
	}
	if _, err := NewJob(JobConfig{Agg: core.AggFuncID(99)}); err == nil {
		t.Fatal("bad agg must fail")
	}
}

func TestStreamingMinAggregation(t *testing.T) {
	job, err := NewJob(JobConfig{Workers: 2, WindowSize: 50, Agg: core.AggMin, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateEvents(5, 30, 200)
	if _, err := job.Run(events); err != nil {
		t.Fatal(err) // Run self-verifies against the min reference
	}
}
