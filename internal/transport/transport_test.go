package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// forwarder is a minimal switch used by transport tests: it forwards every
// frame based on destination MAC node ID via a static port map.
type forwarder struct {
	nw    *netsim.Network
	id    netsim.NodeID
	route map[uint32]int
}

func (f *forwarder) Attach(nw *netsim.Network, id netsim.NodeID) { f.nw, f.id = nw, id }
func (f *forwarder) HandleFrame(_ int, frame []byte) {
	var eth wire.Ethernet
	if _, err := eth.DecodeFrom(frame); err != nil {
		return
	}
	if port, ok := f.route[eth.Dst.NodeID()]; ok {
		f.nw.Send(f.id, port, frame)
	}
}

// rig is two hosts joined by one switch.
type rig struct {
	nw   *netsim.Network
	a, b *Host
}

func newRig(t *testing.T, cfg netsim.LinkConfig) *rig {
	t.Helper()
	nw := netsim.New(7)
	sw := &forwarder{route: map[uint32]int{}}
	a, b := NewHost(), NewHost()
	nw.AddNode(uint32ID(topology.SwitchBase), sw)
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	pa, _ := nw.Connect(netsim.NodeID(topology.SwitchBase), 1, cfg)
	pb, _ := nw.Connect(netsim.NodeID(topology.SwitchBase), 2, cfg)
	sw.route[1] = pa
	sw.route[2] = pb
	return &rig{nw: nw, a: a, b: b}
}

func uint32ID(id netsim.NodeID) netsim.NodeID { return id }

func TestUDPDelivery(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	var got []byte
	var gotSrc wire.IPv4Addr
	var gotPort uint16
	r.b.HandleUDP(5000, func(src wire.IPv4Addr, srcPort uint16, payload []byte) {
		got = append([]byte(nil), payload...)
		gotSrc, gotPort = src, srcPort
	})
	r.a.SendUDP(2, 1234, 5000, []byte("ping"))
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" || gotSrc.NodeID() != 1 || gotPort != 1234 {
		t.Fatalf("got %q from %v:%d", got, gotSrc, gotPort)
	}
	if r.b.Stats.UDPRx != 1 || r.a.Stats.FramesTx != 1 {
		t.Fatalf("stats a=%+v b=%+v", r.a.Stats, r.b.Stats)
	}
}

func TestUDPUnregisteredPortDropped(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	r.a.SendUDP(2, 1, 9999, []byte("x"))
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if r.b.Stats.UDPRx != 1 { // counted at NIC, just no handler
		t.Fatalf("stats %+v", r.b.Stats)
	}
}

func TestUDPHandlerDeregister(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	calls := 0
	r.b.HandleUDP(5000, func(wire.IPv4Addr, uint16, []byte) { calls++ })
	r.b.HandleUDP(5000, nil)
	r.a.SendUDP(2, 1, 5000, []byte("x"))
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("handler ran after deregistration")
	}
}

// transfer pushes total bytes from a to b over tcplite and returns b's
// received bytes, the server conn, and the client conn.
func transfer(t *testing.T, r *rig, payload []byte, mss int, maxEvents uint64) ([]byte, *Conn, *Conn) {
	t.Helper()
	var rx bytes.Buffer
	done := false
	var serverConn *Conn
	r.b.ListenTCP(8080, func(c *Conn) {
		serverConn = c
		c.OnData = func(p []byte) { rx.Write(p) }
		c.OnClose = func() {
			done = true
			c.Close() // close our half too, like a real server would
		}
	})
	client := r.a.DialTCP(2, 8080, func(c *Conn) {})
	if mss > 0 {
		client.SetMSS(mss)
	}
	client.Write(payload)
	client.Close()
	if err := r.nw.Run(maxEvents); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("receiver never saw EOF")
	}
	return rx.Bytes(), serverConn, client
}

func TestTCPBasicTransfer(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	payload := make([]byte, 100_000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(payload)
	got, srv, cli := transfer(t, r, payload, 0, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrupted transfer: got %d bytes want %d", len(got), len(payload))
	}
	if cli.Stats.Retrans != 0 {
		t.Fatalf("retransmissions on a clean link: %d", cli.Stats.Retrans)
	}
	// Segment count: ceil(100000/1460) = 69 data segments.
	if srv.Stats.DataSegsRx != 69 {
		t.Fatalf("data segs %d want 69", srv.Stats.DataSegsRx)
	}
	if cli.State() != StateClosed {
		t.Fatalf("client state %v", cli.State())
	}
}

func TestTCPEmptyTransferJustClose(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	got, _, _ := transfer(t, r, nil, 0, 0)
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestTCPSmallMSS(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	payload := []byte("hello world, this spans several tiny segments")
	got, srv, _ := transfer(t, r, payload, 8, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	want := (len(payload) + 7) / 8
	if int(srv.Stats.DataSegsRx) != want {
		t.Fatalf("segments %d want %d", srv.Stats.DataSegsRx, want)
	}
}

func TestTCPLossRecovery(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.2} {
		r := newRig(t, netsim.LinkConfig{LossProb: loss})
		payload := make([]byte, 50_000)
		rand.New(rand.NewSource(11)).Read(payload)
		got, _, cli := transfer(t, r, payload, 0, 5_000_000)
		if !bytes.Equal(got, payload) {
			t.Fatalf("loss=%v: corrupted transfer (%d vs %d bytes)", loss, len(got), len(payload))
		}
		if loss >= 0.05 && cli.Stats.Retrans == 0 {
			t.Fatalf("loss=%v: expected retransmissions", loss)
		}
	}
}

// Property: any payload arrives intact, in order, for random sizes and MSS.
func TestTCPDeliveryProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, mssRaw uint8) bool {
		size := int(sizeRaw) % 20000
		mss := 64 + int(mssRaw)*8
		r := newRig(t, netsim.LinkConfig{})
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)
		got, _, _ := transfer(t, r, payload, mss, 2_000_000)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPMultipleWrites(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	var rx bytes.Buffer
	closed := false
	r.b.ListenTCP(80, func(c *Conn) {
		c.OnData = func(p []byte) { rx.Write(p) }
		c.OnClose = func() { closed = true }
	})
	c := r.a.DialTCP(2, 80, nil)
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 997)
		want.Write(chunk)
		c.Write(chunk)
	}
	c.Close()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if !closed || !bytes.Equal(rx.Bytes(), want.Bytes()) {
		t.Fatalf("closed=%v rx=%d want=%d", closed, rx.Len(), want.Len())
	}
}

func TestTCPWriteAfterClosePanics(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	c := r.a.DialTCP(2, 80, nil)
	c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on write-after-close")
		}
	}()
	c.Write([]byte("x"))
}

func TestTCPDialToNonListenerTimesOutQuietly(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	connected := false
	c := r.a.DialTCP(2, 4242, func(*Conn) { connected = true })
	// Bound the run: SYN retransmits forever against a silent peer.
	if err := r.nw.Run(10_000); err == nil {
		t.Log("run drained (engine may have idled)")
	}
	if connected {
		t.Fatal("connected to nothing")
	}
	if c.State() != StateSynSent {
		t.Fatalf("state %v", c.State())
	}
}

func TestTCPBidirectional(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	var fromA, fromB bytes.Buffer
	bClosed := false
	r.b.ListenTCP(80, func(c *Conn) {
		c.OnData = func(p []byte) { fromA.Write(p) }
		c.OnClose = func() {
			// Echo back then close our side.
			c.Write([]byte("response-from-b"))
			c.Close()
			bClosed = true
		}
	})
	var cli *Conn
	cli = r.a.DialTCP(2, 80, func(c *Conn) {
		c.Write([]byte("request-from-a"))
		c.Close()
	})
	cli.OnData = func(p []byte) { fromB.Write(p) }
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if fromA.String() != "request-from-a" {
		t.Fatalf("b got %q", fromA.String())
	}
	if fromB.String() != "response-from-b" {
		t.Fatalf("a got %q", fromB.String())
	}
	if !bClosed {
		t.Fatal("b never saw EOF")
	}
}

func TestTCPSegmentCountsMatchMSSMath(t *testing.T) {
	// The Figure-3 TCP baseline depends on data segments ~= bytes/MSS.
	r := newRig(t, netsim.LinkConfig{})
	const size = 146_000 // 100 segments at MSS 1460
	payload := make([]byte, size)
	got, srv, cli := transfer(t, r, payload, 0, 0)
	if len(got) != size {
		t.Fatalf("len %d", len(got))
	}
	if srv.Stats.DataSegsRx != 100 {
		t.Fatalf("segs %d", srv.Stats.DataSegsRx)
	}
	if cli.Stats.BytesTx != size {
		t.Fatalf("bytes tx %d", cli.Stats.BytesTx)
	}
	if srv.Stats.BytesRx != size {
		t.Fatalf("bytes rx %d", srv.Stats.BytesRx)
	}
}

func TestTCPSlowLinkBackpressure(t *testing.T) {
	// A 10 Mb/s link with the default window: transfer must still complete.
	r := newRig(t, netsim.LinkConfig{
		BandwidthBps: 10_000_000,
		Propagation:  50 * time.Microsecond,
	})
	payload := make([]byte, 200_000)
	got, _, cli := transfer(t, r, payload, 0, 10_000_000)
	if len(got) != len(payload) {
		t.Fatalf("len %d", len(got))
	}
	// With 64 KB window and ~160 ms of serialization, some RTO-driven
	// retransmission is tolerable but the stream must not explode.
	if cli.Stats.Retrans > 200 {
		t.Fatalf("excessive retransmissions: %d", cli.Stats.Retrans)
	}
}
