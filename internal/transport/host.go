// Package transport provides end-host networking over the netsim fabric:
// an unreliable datagram service (udplite — the carrier of the DAIET
// protocol) and a reliable byte-stream service (tcplite — the paper's TCP
// baseline).
//
// Hosts are netsim Nodes with a single uplink port (port 0 in every
// topology this repository builds). All I/O is callback-based because the
// simulation is single-threaded discrete-event: there is no blocking Read.
package transport

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// DatagramHandler receives one UDP payload. The payload aliases the frame
// buffer and is owned by the callee.
type DatagramHandler func(src wire.IPv4Addr, srcPort uint16, payload []byte)

// FrameHook observes every frame a host receives, before demux. Counters
// and traffic probes (the experiment's measurement points) hang here.
type FrameHook func(frame []byte)

// HostStats counts a host's traffic as seen at its NIC.
type HostStats struct {
	FramesRx uint64
	FramesTx uint64
	BytesRx  uint64
	BytesTx  uint64
	UDPRx    uint64
	TCPRx    uint64
	BadRx    uint64 // undecodable or unexpected frames
}

// Host is an end host attached to the fabric.
type Host struct {
	nw *netsim.Network
	id netsim.NodeID

	udpHandlers map[uint16]DatagramHandler
	conns       map[connKey]*Conn
	listeners   map[uint16]func(*Conn)
	nextPort    uint16

	Stats  HostStats
	OnRx   FrameHook // optional
	uplink int

	// Straggler injection: while paused, outbound frames are parked in
	// order instead of transmitted (a stalled sender process whose NIC
	// still receives); Resume releases them back-to-back. Toggled only at
	// quiescent fault-injection control points.
	paused bool
	parked [][]byte
}

// NewHost creates a host; add it to a network with Network.AddNode (or let
// topology.Realize do it).
func NewHost() *Host {
	return &Host{
		udpHandlers: make(map[uint16]DatagramHandler),
		conns:       make(map[connKey]*Conn),
		listeners:   make(map[uint16]func(*Conn)),
		nextPort:    49152,
	}
}

// Attach implements netsim.Node.
func (h *Host) Attach(nw *netsim.Network, id netsim.NodeID) { h.nw, h.id = nw, id }

// ID returns the host's fabric node ID.
func (h *Host) ID() netsim.NodeID { return h.id }

// Network returns the fabric the host is attached to.
func (h *Host) Network() *netsim.Network { return h.nw }

// HandleUDP registers handler for datagrams addressed to port. A nil
// handler deregisters.
func (h *Host) HandleUDP(port uint16, handler DatagramHandler) {
	if handler == nil {
		delete(h.udpHandlers, port)
		return
	}
	h.udpHandlers[port] = handler
}

// ephemeralPort allocates a local port for outbound connections.
func (h *Host) ephemeralPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort == 0 {
		h.nextPort = 49152
	}
	return p
}

// After schedules fn on the fabric's clock, satisfying core.TimerCarrier
// for the reliability extension. The timer is routed to the event-engine
// domain that owns this host, so it works identically on partitioned
// fabrics.
func (h *Host) After(d time.Duration, fn func()) {
	h.nw.NodeAfter(h.id, netsim.Duration(d), fn)
}

// Now returns the host's current virtual time (its domain clock).
func (h *Host) Now() netsim.Time { return h.nw.NodeNow(h.id) }

// txAccount records one egress frame in the NIC counters; every transmit
// path (single-frame and burst) funnels through it.
func (h *Host) txAccount(frame []byte) {
	h.Stats.FramesTx++
	h.Stats.BytesTx += uint64(len(frame))
}

// Pause stalls the host's sending side: subsequent outbound frames are
// parked until Resume. Inbound frames and timers keep running (the NIC and
// clock outlive a stalled process). Fault injection calls this only while
// the network is quiescent.
func (h *Host) Pause() { h.paused = true }

// Paused reports whether the host's sending side is stalled.
func (h *Host) Paused() bool { return h.paused }

// Resume releases a paused host: every parked frame is transmitted
// back-to-back in its original order, then normal sending resumes.
func (h *Host) Resume() {
	if !h.paused {
		return
	}
	h.paused = false
	if len(h.parked) > 0 {
		frames := h.parked
		h.parked = nil
		for _, f := range frames {
			h.txAccount(f)
		}
		h.nw.SendBurst(h.id, h.uplink, frames)
	}
}

// SendFrame transmits a prebuilt Ethernet frame out of the uplink.
func (h *Host) SendFrame(frame []byte) {
	if h.paused {
		h.parked = append(h.parked, frame)
		return
	}
	h.txAccount(frame)
	h.nw.Send(h.id, h.uplink, frame)
}

// SendUDP builds and transmits one UDP datagram to dst.
func (h *Host) SendUDP(dst netsim.NodeID, srcPort, dstPort uint16, payload []byte) {
	h.SendFrame(h.buildUDPFrame(dst, srcPort, dstPort, payload))
}

// SendUDPBurst builds and transmits one UDP datagram per payload to dst,
// handing the whole batch to the fabric in one call (core.BurstCarrier).
// Frames are emitted in payload order, exactly as repeated SendUDP would.
func (h *Host) SendUDPBurst(dst netsim.NodeID, srcPort, dstPort uint16, payloads [][]byte) {
	if len(payloads) == 0 {
		return
	}
	frames := make([][]byte, len(payloads))
	for i, p := range payloads {
		frames[i] = h.buildUDPFrame(dst, srcPort, dstPort, p)
	}
	if h.paused {
		h.parked = append(h.parked, frames...)
		return
	}
	for _, f := range frames {
		h.txAccount(f)
	}
	h.nw.SendBurst(h.id, h.uplink, frames)
}

func (h *Host) buildUDPFrame(dst netsim.NodeID, srcPort, dstPort uint16, payload []byte) []byte {
	buf := wire.NewBuffer(wire.DefaultHeadroom, len(payload))
	buf.AppendBytes(payload)
	u := wire.UDP{SrcPort: srcPort, DstPort: dstPort}
	u.SerializeTo(buf)
	ip := wire.IPv4{
		Protocol: wire.ProtocolUDP,
		Src:      wire.IPFromNode(uint32(h.id)),
		Dst:      wire.IPFromNode(uint32(dst)),
		TTL:      wire.DefaultTTL,
	}
	ip.SerializeTo(buf)
	e := wire.Ethernet{
		Dst:       wire.MACFromNode(uint32(dst)),
		Src:       wire.MACFromNode(uint32(h.id)),
		EtherType: wire.EtherTypeIPv4,
	}
	e.SerializeTo(buf)
	return buf.Bytes()
}

// HandleFrame implements netsim.Node: decode and demux one received frame.
func (h *Host) HandleFrame(inPort int, frame []byte) {
	h.Stats.FramesRx++
	h.Stats.BytesRx += uint64(len(frame))
	if h.OnRx != nil {
		h.OnRx(frame)
	}

	var eth wire.Ethernet
	rest, err := eth.DecodeFrom(frame)
	if err != nil || eth.EtherType != wire.EtherTypeIPv4 {
		h.Stats.BadRx++
		return
	}
	var ip wire.IPv4
	if rest, err = ip.DecodeFrom(rest); err != nil {
		h.Stats.BadRx++
		return
	}
	switch ip.Protocol {
	case wire.ProtocolUDP:
		var u wire.UDP
		payload, err := u.DecodeFrom(rest)
		if err != nil {
			h.Stats.BadRx++
			return
		}
		h.Stats.UDPRx++
		if handler, ok := h.udpHandlers[u.DstPort]; ok {
			handler(ip.Src, u.SrcPort, payload)
		}
	case wire.ProtocolTCPLite:
		var seg wire.TCPLite
		payload, err := seg.DecodeFrom(rest)
		if err != nil {
			h.Stats.BadRx++
			return
		}
		h.Stats.TCPRx++
		h.handleTCP(ip.Src, seg, payload)
	default:
		h.Stats.BadRx++
	}
}

// connKey identifies one tcplite connection from the host's viewpoint.
type connKey struct {
	localPort  uint16
	remoteNode uint32
	remotePort uint16
}

func (k connKey) String() string {
	return fmt.Sprintf(":%d<->%d:%d", k.localPort, k.remoteNode, k.remotePort)
}
