package transport

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// tcplite is a deliberately small reliable byte-stream protocol: MSS
// segmentation, a fixed sliding window, cumulative ACKs, go-back-N
// retransmission on a fixed RTO, and FIN teardown. It reproduces the
// packetization and reliability behaviour that Figure 3's TCP baseline
// depends on without modelling congestion control dynamics the experiment
// never stresses.

// Tunables. MSS defaults to the classic Ethernet-payload-derived 1460 so
// the TCP baseline packs ~73 20-byte pairs per segment; the Figure-3
// harness sweeps this.
const (
	DefaultMSS    = 1460
	DefaultWindow = 64 * 1024 // bytes in flight
	DefaultRTO    = 5 * time.Millisecond
)

// ConnState enumerates the tcplite connection lifecycle.
type ConnState int

// Connection states (subset of TCP's; enough for open-transfer-close).
const (
	StateSynSent ConnState = iota
	StateSynReceived
	StateEstablished
	StateFinWait   // we sent FIN, waiting for its ACK
	StateCloseWait // peer sent FIN; we may still send
	StateClosed
)

// ConnStats counts one connection's traffic.
type ConnStats struct {
	SegsTx     uint64 // all segments sent, including retransmissions
	SegsRx     uint64 // all segments received
	DataSegsTx uint64
	DataSegsRx uint64 // data-bearing segments received (incl. duplicates)
	BytesTx    uint64 // payload bytes first-transmitted
	BytesRx    uint64 // payload bytes delivered in order
	Retrans    uint64 // segments retransmitted
	DupSegs    uint64 // received duplicate/overlapping data segments
}

// Conn is one tcplite connection endpoint.
type Conn struct {
	host  *Host
	key   connKey
	state ConnState

	mss    int
	window int
	rto    time.Duration

	// Send side.
	sndBuf     []byte // bytes accepted from the app, not yet acked
	sndUna     uint32 // lowest unacknowledged sequence number
	sndNxt     uint32 // next sequence number to transmit
	iss        uint32 // initial send sequence
	finQueued  bool   // app called Close
	finSent    bool
	finSeq     uint32
	timerArmed bool
	timerGen   int // invalidates stale timers

	// Receive side.
	rcvNxt uint32
	ooo    map[uint32][]byte // out-of-order segments keyed by seq

	// Callbacks.
	OnData    func(p []byte)
	OnClose   func()
	onConnect func(*Conn)

	Stats ConnStats
}

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteNode returns the peer's fabric node ID.
func (c *Conn) RemoteNode() netsim.NodeID { return netsim.NodeID(c.key.remoteNode) }

// State returns the connection state.
func (c *Conn) State() ConnState { return c.state }

// ListenTCP registers an accept callback for connections to port.
func (h *Host) ListenTCP(port uint16, accept func(*Conn)) {
	h.listeners[port] = accept
}

// DialTCP opens a connection to (dst, dstPort). onConnect fires when the
// handshake completes. Returns the half-open connection immediately; Write
// before connect establishment is legal (bytes queue).
func (h *Host) DialTCP(dst netsim.NodeID, dstPort uint16, onConnect func(*Conn)) *Conn {
	key := connKey{localPort: h.ephemeralPort(), remoteNode: uint32(dst), remotePort: dstPort}
	c := &Conn{
		host:      h,
		key:       key,
		state:     StateSynSent,
		mss:       DefaultMSS,
		window:    DefaultWindow,
		rto:       DefaultRTO,
		ooo:       make(map[uint32][]byte),
		onConnect: onConnect,
		// Deterministic ISS derived from the endpoint pair keeps runs
		// reproducible.
		iss: uint32(uint64(h.id)<<16 ^ uint64(dst)<<8 ^ uint64(dstPort)),
	}
	c.sndUna, c.sndNxt = c.iss, c.iss
	h.conns[key] = c
	c.sendSeg(wire.TCPFlagSYN, c.sndNxt, 0, nil)
	c.sndNxt++ // SYN occupies one sequence number
	c.armTimer()
	return c
}

// SetMSS overrides the segment payload size (before or between writes).
func (c *Conn) SetMSS(mss int) {
	if mss > 0 {
		c.mss = mss
	}
}

// SetWindow overrides the bytes-in-flight window.
func (c *Conn) SetWindow(w int) {
	if w > 0 {
		c.window = w
	}
}

// SetRTO overrides the retransmission timeout.
func (c *Conn) SetRTO(d time.Duration) {
	if d > 0 {
		c.rto = d
	}
}

// Write queues p for reliable delivery. Writing after Close panics: it is
// a program bug in the workload driver.
func (c *Conn) Write(p []byte) {
	if c.finQueued || c.state == StateClosed {
		panic(fmt.Sprintf("tcplite: write on closing conn %s", c.key))
	}
	c.sndBuf = append(c.sndBuf, p...)
	c.pump()
}

// Close marks the end of the send stream; a FIN is sent after all queued
// bytes.
func (c *Conn) Close() {
	if c.finQueued {
		return
	}
	c.finQueued = true
	c.pump()
}

// inFlight returns unacknowledged bytes.
func (c *Conn) inFlight() int { return int(c.sndNxt - c.sndUna) }

// pump transmits as much queued data as the window allows, then the FIN.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return // handshake not done yet; SYN retransmit timer will drive us
	}
	for {
		sent := int(c.sndNxt - c.sndUna)
		if c.finSent {
			sent-- // FIN consumed one seq but no buffer byte
		}
		remaining := len(c.sndBuf) - sent
		if remaining <= 0 || c.inFlight() >= c.window || c.finSent {
			break
		}
		n := remaining
		if n > c.mss {
			n = c.mss
		}
		// Send whole segments only: partial-MSS sends would misalign the
		// stream's packetization, which the packet-count experiments
		// measure. Wait for ACKs instead.
		if c.inFlight()+n > c.window {
			break
		}
		seg := c.sndBuf[sent : sent+n]
		c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, seg)
		c.Stats.DataSegsTx++
		c.Stats.BytesTx += uint64(n)
		c.sndNxt += uint32(n)
		c.armTimer()
	}
	if c.finQueued && !c.finSent {
		sent := int(c.sndNxt - c.sndUna)
		if sent == len(c.sndBuf) { // everything transmitted at least once
			c.finSeq = c.sndNxt
			c.sendSeg(wire.TCPFlagFIN|wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
			c.sndNxt++
			c.finSent = true
			c.armTimer()
		}
	}
}

// sendSeg builds and transmits one segment.
func (c *Conn) sendSeg(flags uint16, seq, ack uint32, payload []byte) {
	buf := wire.NewBuffer(wire.DefaultHeadroom, len(payload))
	buf.AppendBytes(payload)
	seg := wire.TCPLite{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  uint16(c.window / 1024),
	}
	frame := wire.BuildTCPLiteFrame(buf, seg, uint32(c.host.id), c.key.remoteNode)
	c.Stats.SegsTx++
	c.host.SendFrame(frame)
}

// armTimer schedules the retransmission timer if anything is outstanding.
func (c *Conn) armTimer() {
	if c.timerArmed {
		return
	}
	if c.sndUna == c.sndNxt && c.state != StateSynSent {
		return
	}
	c.timerArmed = true
	gen := c.timerGen
	c.host.After(c.rto, func() { c.onTimer(gen) })
}

// onTimer retransmits from sndUna (go-back-N) when the timer is still
// relevant.
func (c *Conn) onTimer(gen int) {
	c.timerArmed = false
	if gen != c.timerGen || c.state == StateClosed {
		return
	}
	if c.sndUna == c.sndNxt {
		return // everything acked meanwhile
	}
	switch c.state {
	case StateSynSent:
		c.Stats.Retrans++
		c.sendSeg(wire.TCPFlagSYN, c.iss, 0, nil)
	default:
		// Retransmit one window from sndUna.
		c.retransmitFrom(c.sndUna)
	}
	c.armTimer()
}

// retransmitFrom resends buffered bytes in [from, sndNxt).
func (c *Conn) retransmitFrom(from uint32) {
	base := c.sndUna
	for seq := from; seq != c.sndNxt; {
		if c.finSent && seq == c.finSeq {
			c.Stats.Retrans++
			c.sendSeg(wire.TCPFlagFIN|wire.TCPFlagACK, seq, c.rcvNxt, nil)
			seq++
			continue
		}
		off := int(seq - base)
		n := len(c.sndBuf) - off
		if c.finSent {
			// Buffer indexing: sndBuf holds only data bytes.
			n = int(c.finSeq-base) - off
		}
		if n <= 0 {
			break
		}
		if n > c.mss {
			n = c.mss
		}
		c.Stats.Retrans++
		c.sendSeg(wire.TCPFlagACK, seq, c.rcvNxt, c.sndBuf[off:off+n])
		seq += uint32(n)
	}
}

// handleTCP demuxes one received tcplite segment to its connection or
// listener.
func (h *Host) handleTCP(src wire.IPv4Addr, seg wire.TCPLite, payload []byte) {
	key := connKey{localPort: seg.DstPort, remoteNode: src.NodeID(), remotePort: seg.SrcPort}
	if c, ok := h.conns[key]; ok {
		c.handleSeg(seg, payload)
		return
	}
	// New connection? Only SYNs to a listening port are accepted.
	if seg.Flags&wire.TCPFlagSYN != 0 && seg.Flags&wire.TCPFlagACK == 0 {
		accept, listening := h.listeners[seg.DstPort]
		if !listening {
			return // silently ignore; RSTs add nothing to the experiments
		}
		c := &Conn{
			host:   h,
			key:    key,
			state:  StateSynReceived,
			mss:    DefaultMSS,
			window: DefaultWindow,
			rto:    DefaultRTO,
			ooo:    make(map[uint32][]byte),
			iss:    uint32(uint64(h.id)<<16 ^ uint64(key.remoteNode)<<8 ^ 0x5a5a),
			rcvNxt: seg.Seq + 1,
		}
		c.sndUna, c.sndNxt = c.iss, c.iss
		h.conns[key] = c
		accept(c)
		c.sendSeg(wire.TCPFlagSYN|wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
		c.sndNxt++
		c.armTimer()
		return
	}
}

// handleSeg advances one connection's state machine.
func (c *Conn) handleSeg(seg wire.TCPLite, payload []byte) {
	c.Stats.SegsRx++

	// TIME_WAIT-style lingering: a closed connection still re-acks
	// retransmitted FINs so a lost final ACK cannot make the peer
	// retransmit forever.
	if c.state == StateClosed {
		if seg.Flags&wire.TCPFlagFIN != 0 {
			c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
		}
		return
	}

	// Duplicate SYN (our SYN-ACK got lost): re-ack it.
	if seg.Flags&wire.TCPFlagSYN != 0 && seg.Flags&wire.TCPFlagACK == 0 {
		if c.state == StateSynReceived || c.state == StateEstablished {
			c.sendSeg(wire.TCPFlagSYN|wire.TCPFlagACK, c.iss, c.rcvNxt, nil)
		}
		return
	}

	// SYN-ACK completes the client handshake.
	if seg.Flags&wire.TCPFlagSYN != 0 && seg.Flags&wire.TCPFlagACK != 0 {
		if c.state == StateSynSent {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.state = StateEstablished
			c.timerGen++
			c.timerArmed = false
			c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
			if c.onConnect != nil {
				c.onConnect(c)
			}
			c.pump()
		} else {
			// Duplicate SYN-ACK: our ACK was lost; re-ack.
			c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
		}
		return
	}

	// Plain ACK processing.
	if seg.Flags&wire.TCPFlagACK != 0 {
		if c.state == StateSynReceived {
			c.state = StateEstablished
			c.timerGen++
			c.timerArmed = false
			c.pump()
		}
		if seqLEQ(c.sndUna, seg.Ack) && seqLEQ(seg.Ack, c.sndNxt) {
			advanced := seg.Ack != c.sndUna
			if advanced {
				// Trim acknowledged bytes off the send buffer. The FIN seq
				// consumes no buffer byte.
				ackedData := int(seg.Ack - c.sndUna)
				if c.finSent && seqLess(c.finSeq, seg.Ack) {
					ackedData--
				}
				if ackedData > len(c.sndBuf) {
					ackedData = len(c.sndBuf)
				}
				c.sndBuf = c.sndBuf[ackedData:]
				c.sndUna = seg.Ack
				c.timerGen++
				c.timerArmed = false
				if c.sndUna != c.sndNxt {
					c.armTimer()
				}
				if c.finSent && c.sndUna == c.sndNxt {
					// Our FIN is acknowledged.
					if c.state == StateCloseWait || c.state == StateFinWait {
						c.teardown()
					} else {
						c.state = StateFinWait
					}
				}
				c.pump()
			}
		}
	}

	// Data delivery.
	if len(payload) > 0 {
		c.Stats.DataSegsRx++
		c.acceptData(seg.Seq, payload)
		c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
	}

	// FIN from the peer.
	if seg.Flags&wire.TCPFlagFIN != 0 {
		if seg.Seq == c.rcvNxt {
			c.rcvNxt++
			c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
			switch c.state {
			case StateFinWait:
				c.teardown()
			case StateEstablished:
				c.state = StateCloseWait
				if c.finSent && c.sndUna == c.sndNxt {
					c.teardown()
				} else if c.OnClose != nil && !c.finQueued {
					// Peer half-closed; notify the app (EOF).
					c.notifyClose()
				}
			}
		} else if seqLess(seg.Seq, c.rcvNxt) {
			// Duplicate FIN: re-ack.
			c.sendSeg(wire.TCPFlagACK, c.sndNxt, c.rcvNxt, nil)
		} else {
			// FIN beyond rcvNxt: data before it was lost; ignore, the
			// sender will retransmit everything from its sndUna.
			c.Stats.DupSegs++
		}
	}
}

// acceptData ingests a data segment, delivering in-order bytes and parking
// out-of-order ones.
func (c *Conn) acceptData(seq uint32, payload []byte) {
	if seqLess(seq, c.rcvNxt) {
		// Fully or partially duplicate. Deliver only the new suffix if any.
		dup := int(c.rcvNxt - seq)
		if dup >= len(payload) {
			c.Stats.DupSegs++
			return
		}
		payload = payload[dup:]
		seq = c.rcvNxt
	}
	if seq != c.rcvNxt {
		// Out of order: park a copy (the frame buffer is transient).
		if _, exists := c.ooo[seq]; !exists {
			c.ooo[seq] = append([]byte(nil), payload...)
		} else {
			c.Stats.DupSegs++
		}
		return
	}
	c.deliver(payload)
	// Drain contiguous out-of-order segments.
	for {
		p, ok := c.ooo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.ooo, c.rcvNxt)
		c.deliver(p)
	}
}

func (c *Conn) deliver(p []byte) {
	c.rcvNxt += uint32(len(p))
	c.Stats.BytesRx += uint64(len(p))
	if c.OnData != nil {
		c.OnData(p)
	}
}

// teardown finishes the connection. The entry lingers in the host's demux
// table for a few RTOs (TIME_WAIT) before being reaped.
func (c *Conn) teardown() {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.timerGen++
	key := c.key
	h := c.host
	h.After(8*c.rto, func() {
		if cur, ok := h.conns[key]; ok && cur == c {
			delete(h.conns, key)
		}
	})
	c.notifyClose()
}

func (c *Conn) notifyClose() {
	if c.OnClose != nil {
		f := c.OnClose
		c.OnClose = nil
		f()
	}
}

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return a == b || seqLess(a, b) }
