package transport

import (
	"testing"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// newBenchRig mirrors newRig without the testing.T dependency.
func newBenchRig(cfg netsim.LinkConfig) *rig {
	nw := netsim.New(7)
	sw := &forwarder{route: map[uint32]int{}}
	a, b := NewHost(), NewHost()
	nw.AddNode(netsim.NodeID(topology.SwitchBase), sw)
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	pa, _ := nw.Connect(netsim.NodeID(topology.SwitchBase), 1, cfg)
	pb, _ := nw.Connect(netsim.NodeID(topology.SwitchBase), 2, cfg)
	sw.route[1] = pa
	sw.route[2] = pb
	return &rig{nw: nw, a: a, b: b}
}

// BenchmarkTCPLiteTransfer measures a 1 MB reliable transfer through the
// simulated fabric (handshake, segmentation, ACK clocking, teardown).
func BenchmarkTCPLiteTransfer(b *testing.B) {
	payload := make([]byte, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRig(netsim.LinkConfig{})
		var rx int
		r.b.ListenTCP(80, func(c *Conn) {
			c.OnData = func(p []byte) { rx += len(p) }
			c.OnClose = func() { c.Close() }
		})
		c := r.a.DialTCP(2, 80, nil)
		c.Write(payload)
		c.Close()
		if err := r.nw.Run(0); err != nil {
			b.Fatal(err)
		}
		if rx != len(payload) {
			b.Fatalf("rx %d", rx)
		}
	}
}

// BenchmarkUDPDatagram measures one datagram through build/fabric/demux.
func BenchmarkUDPDatagram(b *testing.B) {
	r := newBenchRig(netsim.LinkConfig{})
	got := 0
	r.b.HandleUDP(9, func(_ wire.IPv4Addr, _ uint16, p []byte) { got += len(p) })
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.a.SendUDP(2, 1, 9, payload)
		if err := r.nw.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	if got == 0 {
		b.Fatal("nothing delivered")
	}
}
