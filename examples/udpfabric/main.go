// udpfabric: the DAIET protocol over a real network path. A switch agent
// (the same pipeline program the simulator runs, served over net.UDPConn —
// the role bmv2 plays in the paper's testbed) binds a loopback socket;
// three workers and a reducer connect as real UDP peers. Pairs are
// aggregated inside the agent's metered RMT pipeline and flushed to the
// reducer's socket.
//
// Run with:
//
//	go run ./examples/udpfabric
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/udprt"
	"github.com/daiet/daiet/internal/wire"
)

const (
	reducerID = 100
	nWorkers  = 3
	tableSize = 1024
	keysEach  = 50
)

func main() {
	agent, err := udprt.NewAgent(udprt.AgentConfig{
		ListenAddr: "127.0.0.1:0",
		Trees: []udprt.TreeSpec{{
			TreeID:    reducerID,
			Children:  nWorkers,
			Agg:       core.AggSum,
			TableSize: tableSize,
			NextHop:   reducerID,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	addr := agent.Addr().String()
	fmt.Printf("switch agent listening on %s\n", addr)

	// Reducer peer.
	reducer, err := udprt.Dial(addr, reducerID)
	if err != nil {
		log.Fatal(err)
	}
	defer reducer.Close()
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(reducerID, sum, wire.DefaultGeometry, 1)

	// Worker peers: overlapping keys, like map tasks sharing a vocabulary.
	var sent int
	for w := 0; w < nWorkers; w++ {
		client, err := udprt.Dial(addr, uint32(w+1))
		if err != nil {
			log.Fatal(err)
		}
		sender, err := core.NewSender(client, reducerID, reducerID, wire.DefaultGeometry, 10)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < keysEach; k++ {
			key := fmt.Sprintf("metric-%03d", k)
			if err := sender.Send([]byte(key), uint32(w*1000+k)); err != nil {
				log.Fatal(err)
			}
			sent++
		}
		sender.End()
		client.Close()
		fmt.Printf("worker %d sent %d pairs over real UDP\n", w+1, keysEach)
	}

	// Drain the reducer socket until the END arrives.
	buf := make([]byte, 65536)
	deadline := time.Now().Add(5 * time.Second)
	for !col.Complete() {
		n, err := reducer.ReadPayload(buf, deadline)
		if err != nil {
			log.Fatalf("reducer read: %v (stats %+v)", err, col.Stats)
		}
		col.Ingest(buf[:n])
	}

	st, _ := agent.TreeStats(reducerID)
	fmt.Printf("\nagent pipeline: %d pairs in, %d combined, %d flushed downstream\n",
		st.PairsIn, st.PairsCombined, st.PairsFlushed)
	fmt.Printf("reducer received %d aggregated pairs for %d sent (%.1f%% reduction)\n",
		col.Stats.PairsReceived, sent,
		100*(1-float64(col.Stats.PairsReceived)/float64(sent)))
	for _, kv := range col.SortedResult()[:3] {
		fmt.Printf("  sample: %-12s = %d\n", kv.Key, kv.Value)
	}
}
