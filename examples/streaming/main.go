// Streaming: continuous windowed aggregation (the Storm/StreamScope-style
// workload the paper's §1 lists). Four stream tasks consume shards of a
// skewed telemetry stream; every tumbling window their per-key partials
// flow through one DAIET aggregation tree to the sink — one in-network
// round per window, with the reliability extension's epochs separating
// consecutive windows even while 5% of worker-uplink frames are dropped.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"github.com/daiet/daiet/internal/stream"
)

func main() {
	job, err := stream.NewJob(stream.JobConfig{
		Workers:    4,
		WindowSize: 250,
		Seed:       42,
		Loss:       0.05, // lossy worker uplinks...
		Reliable:   true, // ...handled by the loss-recovery extension
	})
	if err != nil {
		log.Fatal(err)
	}
	events := stream.GenerateEvents(42, 300, 8000)
	fmt.Printf("stream: %d events over %d distinct metrics, 4 workers, window 250\n\n",
		len(events), 300)

	reports, err := job.Run(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %12s %12s %10s %12s %8s\n",
		"window", "pairs sent", "pairs rcvd", "saved", "unique keys", "retrans")
	var sent, rcvd, retrans uint64
	for _, r := range reports {
		fmt.Printf("%-8d %12d %12d %9.1f%% %12d %8d\n",
			r.Window, r.PairsSent, r.PairsReceived, r.ReductionPct, r.UniqueKeys, r.Retransmits)
		sent += r.PairsSent
		rcvd += r.PairsReceived
		retrans += r.Retransmits
	}
	fmt.Printf("\ntotals: %d partials sent, %d delivered after in-network combining (%.1f%% saved), %d retransmissions absorbed\n",
		sent, rcvd, 100*(1-float64(rcvd)/float64(sent)), retrans)
	fmt.Println("every window's sums verified exact despite 5% frame loss")
}
