// Graph analytics: reproduces the paper's Figure 1(c) analysis on a
// LiveJournal-like R-MAT graph. PageRank, SSSP and WCC run on a GPS-style
// Pregel engine over four logical workers; for every iteration the engine
// reports how much of the cross-worker message traffic in-network
// aggregation would absorb (combining all messages addressed to the same
// destination vertex).
//
// Run with:
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/daiet/daiet/internal/graphgen"
	"github.com/daiet/daiet/internal/pregel"
	"github.com/daiet/daiet/internal/stats"
)

func main() {
	g, err := graphgen.RMAT(graphgen.RMATConfig{
		Scale:      15, // 32K vertices; raise toward 23 for LiveJournal scale
		EdgeFactor: 14, // LiveJournal's edges/vertex ratio
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (max out-degree %d)\n\n",
		g.N, g.NumEdges(), g.MaxOutDegree())

	cfg := pregel.Config{Workers: 4, MaxSupersteps: 10}

	pr := pregel.PageRank(g, cfg)
	ss, err := pregel.SSSP(g, g.HighestDegreeVertex(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	wc := pregel.WCC(g, cfg)

	series := func(name string, sts []pregel.SuperstepStats) *stats.Series {
		s := stats.NewSeries(name)
		for _, st := range sts {
			s.Add(float64(st.Superstep), st.TrafficReduction)
		}
		return s
	}
	fmt.Println("potential traffic reduction ratio per iteration (Figure 1c):")
	stats.Table(os.Stdout, "iteration",
		series("PageRank", pr.Stats),
		series("SSSP", ss.Stats),
		series("WCC", wc.Stats))

	fmt.Println("\nper-algorithm message volumes (first -> last active iteration):")
	for _, res := range []*pregel.Result{pr, ss, wc} {
		first := res.Stats[0]
		last := first
		for i := len(res.Stats) - 1; i >= 0; i-- {
			if res.Stats[i].Messages > 0 {
				last = res.Stats[i]
				break
			}
		}
		fmt.Printf("  %-9s %9d -> %-9d messages, remote share %.0f%%\n",
			res.Algorithm, first.Messages, last.Messages,
			100*stats.Ratio(float64(first.RemoteMessages), float64(first.Messages)))
	}
}
