// WordCount: the paper's §5 benchmark, written directly against the public
// API — a MapReduce-style shuffle where each mapper counts words locally,
// partitions its output across reducers, and streams fixed-size key-value
// pairs through the DAIET fabric. The switch aggregates per-key counts
// in-flight; each reducer receives one pair per distinct word plus a single
// END, then performs its (now much smaller) final sort.
//
// The program runs the same input twice — with and without in-network
// aggregation — and prints the Figure-3-style comparison.
//
// Run with:
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	daiet "github.com/daiet/daiet"
)

const (
	numMappers  = 8
	numReducers = 3
	vocabulary  = 400
	totalWords  = 12000
	tableSize   = 4096
)

// corpus generates a random word stream (cf. the paper's random-word
// input) and splits it across mappers.
func corpus(seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	words := make([]string, vocabulary)
	for i := range words {
		words[i] = fmt.Sprintf("word%03d-%04x", i, rng.Intn(1<<16))
	}
	splits := make([][]string, numMappers)
	for i := 0; i < totalWords; i++ {
		m := i % numMappers
		splits[m] = append(splits[m], words[rng.Intn(vocabulary)])
	}
	return splits
}

// partition assigns a word to a reducer index.
func partition(word string) int {
	h := uint32(2166136261)
	for i := 0; i < len(word); i++ {
		h = (h ^ uint32(word[i])) * 16777619
	}
	return int(h % numReducers)
}

// runShuffle executes the shuffle in one mode and reports per-reducer pair
// and packet counts.
func runShuffle(splits [][]string, aggregate bool) (pairsRx, packetsRx uint64, err error) {
	net, err := daiet.NewSingleSwitch(numMappers + numReducers)
	if err != nil {
		return 0, 0, err
	}
	hosts := net.Hosts()
	mappers, reducers := hosts[:numMappers], hosts[numMappers:]

	collectors := make([]*daiet.Collector, numReducers)
	for r, red := range reducers {
		expected := numMappers
		if aggregate {
			tree, err := net.InstallTree(red, mappers, daiet.TreeOptions{
				Agg: daiet.AggSum, TableSize: tableSize,
			})
			if err != nil {
				return 0, 0, err
			}
			expected = tree.RootChildren()
		}
		col, err := net.NewCollector(red, daiet.AggSum, expected)
		if err != nil {
			return 0, 0, err
		}
		collectors[r] = col
	}

	// Map phase: local word counts, partitioned per reducer.
	for m, split := range splits {
		counts := make([]map[string]uint32, numReducers)
		for r := range counts {
			counts[r] = make(map[string]uint32)
		}
		for _, w := range split {
			counts[partition(w)][w]++
		}
		for r, red := range reducers {
			s, err := net.NewSender(mappers[m], red)
			if err != nil {
				return 0, 0, err
			}
			words := make([]string, 0, len(counts[r]))
			for w := range counts[r] {
				words = append(words, w)
			}
			sort.Strings(words)
			for _, w := range words {
				if err := s.Send([]byte(w[:min(16, len(w))]), counts[r][w]); err != nil {
					return 0, 0, err
				}
			}
			s.End()
		}
	}
	if err := net.Run(); err != nil {
		return 0, 0, err
	}
	for r, col := range collectors {
		if !col.Complete() {
			return 0, 0, fmt.Errorf("reducer %d incomplete", r)
		}
		pairsRx += col.Stats.PairsReceived
		packetsRx += col.Stats.Packets
		// The reducer-side sort the paper charges against DAIET:
		_ = col.SortedResult()
	}
	return pairsRx, packetsRx, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	splits := corpus(42)

	basePairs, basePkts, err := runShuffle(splits, false)
	if err != nil {
		log.Fatal(err)
	}
	daietPairs, daietPkts, err := runShuffle(splits, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "baseline", "DAIET")
	fmt.Printf("%-28s %12d %12d\n", "pairs received at reducers", basePairs, daietPairs)
	fmt.Printf("%-28s %12d %12d\n", "packets received", basePkts, daietPkts)
	fmt.Printf("\ndata reduction:   %.1f%%\n", 100*(1-float64(daietPairs)/float64(basePairs)))
	fmt.Printf("packet reduction: %.1f%%  (paper reports ~90%% vs the UDP baseline)\n",
		100*(1-float64(daietPkts)/float64(basePkts)))
}
