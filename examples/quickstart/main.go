// Quickstart: four workers stream overlapping key-value pairs toward one
// reducer through a programmable switch running the DAIET aggregation
// program; the switch combines them in-flight and the reducer receives one
// aggregated pair per distinct key.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	daiet "github.com/daiet/daiet"
)

func main() {
	// The paper's evaluation fabric: hosts on one programmable switch.
	net, err := daiet.NewSingleSwitch(5)
	if err != nil {
		log.Fatal(err)
	}
	hosts := net.Hosts()
	reducer, mappers := hosts[4], hosts[:4]

	// The controller computes the aggregation tree (Figure 2) and installs
	// per-switch state: key/value registers, spillover bucket, END fan-in.
	tree, err := net.InstallTree(reducer, mappers, daiet.TreeOptions{
		Agg:       daiet.AggSum,
		TableSize: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reducer side: the collector expects one END per tree child of the
	// root (here: 1, the switch).
	col, err := net.NewCollector(reducer, daiet.AggSum, tree.RootChildren())
	if err != nil {
		log.Fatal(err)
	}

	// Worker side: every mapper contributes the same 8 keys.
	var pairsSent int
	for _, m := range mappers {
		s, err := net.NewSender(m, reducer)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("word-%02d", i)
			if err := s.Send([]byte(key), uint32(1+i)); err != nil {
				log.Fatal(err)
			}
			pairsSent++
		}
		s.End()
	}

	// Drain the (deterministic) simulation.
	if err := net.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("aggregated result at the reducer:")
	for _, kv := range col.SortedResult() {
		fmt.Printf("  %-8s = %d\n", kv.Key, kv.Value)
	}
	st := net.TreeStatsFor(tree.TreeID)
	fmt.Printf("\npairs sent by workers:      %d\n", pairsSent)
	fmt.Printf("pairs aggregated in-switch: %d\n", st.PairsCombined)
	fmt.Printf("pairs received at reducer:  %d\n", col.Stats.PairsReceived)
	fmt.Printf("traffic reduction:          %.1f%%\n",
		100*(1-float64(col.Stats.PairsReceived)/float64(pairsSent)))
}
