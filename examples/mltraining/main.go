// ML training with in-network gradient aggregation: the scenario Figures
// 1(a)/1(b) motivate. Five workers train a softmax model; every step, each
// worker quantizes its sparse gradient update into fixed-point int32 pairs
// keyed by tensor index and streams them through a DAIET tree rooted at
// the parameter server. The switch sums overlapping coordinates in-flight
// (uint32 wraparound addition is exactly two's-complement int32 addition),
// so the PS receives one pair per distinct coordinate.
//
// Run with:
//
//	go run ./examples/mltraining
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	daiet "github.com/daiet/daiet"
	"github.com/daiet/daiet/internal/mlps"
)

const (
	workers    = 5
	batchSize  = 3
	steps      = 25
	quantScale = 1 << 16 // fixed-point scale for float32 gradients
	lr         = 0.5
	tableSize  = 16384
)

func main() {
	ds := mlps.SyntheticMNIST(1, 2000)
	model := mlps.NewModel()
	opt := mlps.NewSGD(lr)

	net, err := daiet.NewSingleSwitch(workers + 1)
	if err != nil {
		log.Fatal(err)
	}
	hosts := net.Hosts()
	ps, workerHosts := hosts[workers], hosts[:workers]
	tree, err := net.InstallTree(ps, workerHosts, daiet.TreeOptions{
		Agg: daiet.AggSum, TableSize: tableSize,
	})
	if err != nil {
		log.Fatal(err)
	}

	grads := make([]*mlps.Grad, workers)
	for w := range grads {
		grads[w] = mlps.NewGrad()
	}
	shards := make([][]int, workers)
	for i := 0; i < ds.Len(); i++ {
		shards[i%workers] = append(shards[i%workers], i)
	}

	var totalSent, totalRecv uint64
	fmt.Printf("%-6s %-10s %-12s %-12s %-10s\n", "step", "loss", "pairs-sent", "pairs-recv", "saved")
	for step := 0; step < steps; step++ {
		col, err := net.NewCollector(ps, daiet.AggSum, tree.RootChildren())
		if err != nil {
			log.Fatal(err)
		}

		var loss float64
		var sent uint64
		for w := 0; w < workers; w++ {
			batch := make([]int, batchSize)
			for i := range batch {
				batch[i] = shards[w][(step*batchSize+i)%len(shards[w])]
			}
			loss += model.Gradient(ds, batch, grads[w])

			s, err := net.NewSender(workerHosts[w], ps)
			if err != nil {
				log.Fatal(err)
			}
			var key [4]byte
			for _, idx := range grads[w].UpdatedIndices(0, nil) {
				q := int32(grads[w].W[idx] * quantScale)
				if q == 0 {
					continue
				}
				binary.BigEndian.PutUint32(key[:], uint32(idx))
				if err := s.Send(key[:], uint32(q)); err != nil {
					log.Fatal(err)
				}
				sent++
			}
			s.End()
		}
		if err := net.Run(); err != nil {
			log.Fatal(err)
		}
		if !col.Complete() {
			log.Fatalf("step %d: aggregation incomplete", step)
		}

		// Apply the aggregated (summed) gradient at the PS.
		agg := mlps.NewGrad()
		for k, v := range col.Result() {
			idx := binary.BigEndian.Uint32(pad4(k))
			agg.W[idx] = float32(int32(v)) / quantScale
		}
		agg.Scale(1.0 / workers)
		opt.Step(model, agg)

		totalSent += sent
		totalRecv += col.Stats.PairsReceived
		if step%5 == 0 || step == steps-1 {
			fmt.Printf("%-6d %-10.4f %-12d %-12d %.1f%%\n",
				step, loss/workers, sent, col.Stats.PairsReceived,
				100*(1-float64(col.Stats.PairsReceived)/float64(sent)))
		}
	}
	fmt.Printf("\ntotal gradient pairs sent: %d, received after in-network sum: %d (%.1f%% saved)\n",
		totalSent, totalRecv, 100*(1-float64(totalRecv)/float64(totalSent)))
}

// pad4 restores the 4-byte key from the collector's trimmed string form
// (trailing zero bytes are stripped on the wire).
func pad4(k string) []byte {
	b := make([]byte, 4)
	copy(b, k)
	return b
}
