// Package daiet is a from-scratch Go implementation of DAIET — in-network
// data aggregation for partition/aggregate data center applications — as
// described in "In-Network Computation is a Dumb Idea Whose Time Has Come"
// (Sapio, Abdelaziz, Aldilaijan, Canini, Kalnis; HotNets-XVI, 2017),
// together with the substrates its evaluation depends on: an RMT-style
// programmable switch pipeline, a deterministic packet-level network
// simulator, an SDN controller that builds aggregation trees, UDP-like and
// TCP-like transports, a MapReduce framework, a parameter-server ML
// training loop, and a Pregel-style graph engine.
//
// This root package is the public façade: it assembles fabrics, installs
// aggregation trees and hands out the worker/reducer endpoints. The
// quickstart looks like:
//
//	net, _ := daiet.NewSingleSwitch(5)
//	reducer, mappers := net.Hosts()[4], net.Hosts()[:4]
//	tree, _ := net.InstallTree(reducer, mappers, daiet.TreeOptions{
//		Agg: daiet.AggSum, TableSize: 1024,
//	})
//	col := net.NewCollector(reducer, daiet.AggSum, tree.RootChildren())
//	for _, m := range mappers {
//		s, _ := net.NewSender(m, reducer)
//		s.Send([]byte("key"), 1)
//		s.End()
//	}
//	net.Run()
//	fmt.Println(col.Result()) // key -> 4, one packet at the reducer
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture.
package daiet

import (
	"fmt"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// Re-exported identifiers: the façade's vocabulary. Aliases keep the
// internal packages as the single implementation without wrapper
// boilerplate.
type (
	// NodeID identifies a host or switch in a fabric.
	NodeID = netsim.NodeID
	// KV is one key-value pair.
	KV = core.KV
	// AggFuncID names an aggregation function.
	AggFuncID = core.AggFuncID
	// Sender streams one worker's pairs into an aggregation tree.
	Sender = core.Sender
	// Collector receives a tree's (pre-aggregated) output at the reducer.
	Collector = core.Collector
	// TreePlan is a computed aggregation tree.
	TreePlan = controller.TreePlan
	// LinkConfig tunes fabric links.
	LinkConfig = netsim.LinkConfig
	// PairGeometry fixes the on-wire pair layout.
	PairGeometry = wire.PairGeometry
	// Host is an end host attached to the fabric.
	Host = transport.Host
	// Program is the DAIET switch program (statistics access).
	Program = core.Program
	// TreeStats are per-switch per-tree counters.
	TreeStats = core.TreeStats
)

// Aggregation functions.
const (
	AggSum    = core.AggSum
	AggMin    = core.AggMin
	AggMax    = core.AggMax
	AggCount  = core.AggCount
	AggBitOr  = core.AggBitOr
	AggBitAnd = core.AggBitAnd
)

// TreeOptions parameterizes tree installation.
type TreeOptions struct {
	// Agg selects the aggregation function (default AggSum).
	Agg AggFuncID
	// TableSize is the per-switch register array size (default 16384, the
	// paper's configuration).
	TableSize int
	// SpillCap bounds the spillover bucket (default: one packet's worth).
	SpillCap int
}

// Config tunes fabric construction.
type Config struct {
	// Seed drives all randomness (loss injection); same seed, same run.
	Seed uint64
	// Link configures every link (zero value: 10 Gb/s, 1 µs, 256 KiB).
	Link LinkConfig
	// Geometry fixes the pair layout (default: 16-byte keys, paper).
	Geometry PairGeometry
	// MaxPairsPerPacket bounds packetization (default 10, paper).
	MaxPairsPerPacket int
	// SRAMBudget per switch in bytes (default 10 MB, paper's sizing).
	SRAMBudget int
}

func (c Config) withDefaults() Config {
	if c.Geometry.KeyWidth == 0 {
		c.Geometry = wire.DefaultGeometry
	}
	if c.MaxPairsPerPacket == 0 {
		c.MaxPairsPerPacket = wire.DefaultMaxPairs
	}
	if c.SRAMBudget == 0 {
		c.SRAMBudget = 10 << 20
	}
	return c
}

// Network is an assembled fabric: simulator, switches running the DAIET
// program, hosts, and the controller.
type Network struct {
	cfg Config

	Sim        *netsim.Network
	Fabric     *topology.Fabric
	Controller *controller.Controller
	Programs   map[NodeID]*Program

	hosts map[NodeID]*Host
	plans map[uint32]*TreePlan
	muxes map[NodeID]*AckMux
}

// NewSingleSwitch builds the paper's evaluation fabric: n hosts on one
// programmable switch.
func NewSingleSwitch(nHosts int, opts ...Config) (*Network, error) {
	cfg := firstConfig(opts)
	return build(topology.SingleSwitch(nHosts, cfg.Link), cfg)
}

// NewLeafSpine builds a 2-tier Clos fabric.
func NewLeafSpine(leaves, spines, hostsPerLeaf int, opts ...Config) (*Network, error) {
	cfg := firstConfig(opts)
	return build(topology.LeafSpine(leaves, spines, hostsPerLeaf, cfg.Link), cfg)
}

// NewFatTree builds a k-ary fat-tree fabric (k even).
func NewFatTree(k int, opts ...Config) (*Network, error) {
	cfg := firstConfig(opts)
	plan, err := topology.FatTree(k, cfg.Link)
	if err != nil {
		return nil, err
	}
	return build(plan, cfg)
}

func firstConfig(opts []Config) Config {
	var cfg Config
	if len(opts) > 0 {
		cfg = opts[0]
	}
	return cfg.withDefaults()
}

func build(plan *topology.Plan, cfg Config) (*Network, error) {
	n := &Network{
		cfg:      cfg,
		Sim:      netsim.New(cfg.Seed),
		Programs: make(map[NodeID]*Program),
		hosts:    make(map[NodeID]*Host),
		plans:    make(map[uint32]*TreePlan),
	}
	var buildErr error
	mkSwitch := func(id NodeID) netsim.Node {
		prog, err := core.NewProgram(core.ProgramConfig{
			Geometry:          cfg.Geometry,
			MaxPairsPerPacket: cfg.MaxPairsPerPacket,
			SRAMBudget:        cfg.SRAMBudget,
		})
		if err != nil {
			buildErr = err
			prog, _ = core.NewProgram(core.ProgramConfig{})
		}
		n.Programs[id] = prog
		return prog.Switch()
	}
	mkHost := func(id NodeID) netsim.Node {
		h := transport.NewHost()
		n.hosts[id] = h
		return h
	}
	n.Fabric = plan.Realize(n.Sim, mkSwitch, mkHost)
	if buildErr != nil {
		return nil, buildErr
	}
	n.Controller = controller.New(n.Fabric, n.Programs)
	if err := n.Controller.InstallRouting(); err != nil {
		return nil, err
	}
	return n, nil
}

// Hosts returns the fabric's host IDs in ascending order.
func (n *Network) Hosts() []NodeID { return n.Fabric.HostsSorted() }

// Host returns the host endpoint for id, or nil for switches/unknown IDs.
func (n *Network) Host(id NodeID) *Host { return n.hosts[id] }

// InstallTree plans and installs the aggregation tree rooted at reducer
// covering the given mappers, returning the plan. The tree ID equals the
// reducer's node ID.
func (n *Network) InstallTree(reducer NodeID, mappers []NodeID, opt TreeOptions) (*TreePlan, error) {
	if opt.Agg == 0 {
		opt.Agg = AggSum
	}
	if opt.TableSize == 0 {
		opt.TableSize = 16384
	}
	plan, err := n.Controller.PlanTree(reducer, mappers)
	if err != nil {
		return nil, err
	}
	if err := n.Controller.InstallTree(plan, controller.TreeOptions{
		Agg:       opt.Agg,
		TableSize: opt.TableSize,
		SpillCap:  opt.SpillCap,
	}); err != nil {
		return nil, err
	}
	n.plans[plan.TreeID] = plan
	return plan, nil
}

// UninstallTree removes a previously installed tree.
func (n *Network) UninstallTree(plan *TreePlan) {
	n.Controller.UninstallTree(plan)
	delete(n.plans, plan.TreeID)
}

// NewSender creates a worker-side sender from host `worker` into the tree
// rooted at `reducer`.
func (n *Network) NewSender(worker, reducer NodeID) (*Sender, error) {
	h := n.hosts[worker]
	if h == nil {
		return nil, fmt.Errorf("daiet: %d is not a host", worker)
	}
	return core.NewSender(h, uint32(reducer), reducer, n.cfg.Geometry, n.cfg.MaxPairsPerPacket)
}

// NewCollector creates and attaches a reducer-side collector expecting
// expectedEnds END packets (use TreePlan.RootChildren with aggregation, or
// the mapper count without).
func (n *Network) NewCollector(reducer NodeID, agg AggFuncID, expectedEnds int) (*Collector, error) {
	h := n.hosts[reducer]
	if h == nil {
		return nil, fmt.Errorf("daiet: %d is not a host", reducer)
	}
	f, err := core.FuncByID(agg)
	if err != nil {
		return nil, err
	}
	col := core.NewCollector(uint32(reducer), f, n.cfg.Geometry, expectedEnds)
	col.Attach(h)
	return col, nil
}

// Run drains the simulation. The optional budget bounds event count (0 =
// unbounded); it returns an error only if the budget is exhausted.
func (n *Network) Run(budget ...uint64) error {
	var b uint64
	if len(budget) > 0 {
		b = budget[0]
	}
	return n.Sim.Run(b)
}

// TreeStatsFor aggregates a tree's counters across every switch it spans.
func (n *Network) TreeStatsFor(treeID uint32) TreeStats {
	var total TreeStats
	plan := n.plans[treeID]
	if plan == nil {
		return total
	}
	for _, sw := range plan.SwitchNodes {
		if st, ok := n.Programs[sw].TreeStats(treeID); ok {
			total.DataPacketsIn += st.DataPacketsIn
			total.EndPacketsIn += st.EndPacketsIn
			total.PairsIn += st.PairsIn
			total.PairsStored += st.PairsStored
			total.PairsCombined += st.PairsCombined
			total.PairsSpilled += st.PairsSpilled
			total.SpillPacketsOut += st.SpillPacketsOut
			total.FlushPacketsOut += st.FlushPacketsOut
			total.PairsFlushed += st.PairsFlushed
			total.PairsSpillSent += st.PairsSpillSent
			total.EndPacketsOut += st.EndPacketsOut
			total.FlushesCompleted += st.FlushesCompleted
			total.AcksOut += st.AcksOut
			total.DupsDropped += st.DupsDropped
			total.GapsDropped += st.GapsDropped
			total.UnknownSender += st.UnknownSender
		}
	}
	return total
}
