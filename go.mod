module github.com/daiet/daiet

go 1.24
