// daiet-bench regenerates every figure in the paper's evaluation (plus the
// repository's extensions) through the declarative sweep framework in
// internal/experiments: each figure is a registered Spec, executed as a
// multi-seed ensemble and reported as mean ± 95% confidence interval per
// metric. This command contains no per-figure code — it is one loop over
// the registry.
//
// Usage:
//
//	daiet-bench                            # every registered figure
//	daiet-bench -experiment fig3           # one figure by registry name
//	daiet-bench -seeds 10                  # wider ensembles
//	daiet-bench -scale 0.25                # smaller problem sizes
//
// -seed fixes the base seed (per-trial seeds derive from it, so the same
// seed reproduces the same intervals); -parallel sets the sharded runner's
// worker-pool degree (0 = GOMAXPROCS, 1 = sequential) and -sim-workers the
// intra-simulation partition degree (event-engine domains per fabric;
// "auto" lets every fabric pick min(rack-cut units, GOMAXPROCS)) — results
// are identical at any combination. -json writes machine-readable
// per-figure wall-clock and headline metrics (with CI bounds) to the -out
// path (default BENCH_results.json) so the performance trajectory is
// tracked across changes; CI diffs it against the committed baseline via
// cmd/benchdiff and uploads a parallel-vs-sequential comparison.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/daiet/daiet/internal/benchfmt"
	"github.com/daiet/daiet/internal/experiments"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/runner"
)

// defaultJSONPath is where -json writes the machine-readable report.
const defaultJSONPath = "BENCH_results.json"

var (
	experiment = flag.String("experiment", "all", "registry name of the figure to run, or \"all\"")
	seed       = flag.Uint64("seed", 7, "base experiment seed (same seed, same results)")
	seeds      = flag.Int("seeds", experiments.DefaultSeeds, "independent seeds per figure point (the CI ensemble)")
	scale      = flag.Float64("scale", 1.0, "problem-size multiplier (1 = paper scale)")
	parallel   = flag.Int("parallel", 0, "experiment-runner parallelism (0 = GOMAXPROCS, 1 = sequential)")
	simWorkers = flag.String("sim-workers", "1", "intra-simulation parallelism: event-engine domains per fabric, or \"auto\" for min(rack-cut units, GOMAXPROCS) per fabric (results identical at any value)")
	jsonOut    = flag.Bool("json", false, "write per-figure wall-clock and headline metrics to the -out path")
	outPath    = flag.String("out", defaultJSONPath, "path for the -json report")
)

// parseSimWorkers maps the -sim-workers flag onto the RunConfig knob:
// "auto" (or 0) selects per-fabric autotuning, anything else is an
// explicit domain count.
func parseSimWorkers(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("-sim-workers: want a non-negative integer or \"auto\", got %q", s)
	}
	return n, nil
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	simW, err := parseSimWorkers(*simWorkers)
	if err != nil {
		log.Fatal(err)
	}

	var specs []*experiments.Spec
	for _, s := range experiments.Specs() {
		if *experiment == "all" || *experiment == s.Name {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		var names []string
		for _, s := range experiments.Specs() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		log.Fatalf("unknown experiment %q (registered: %s)", *experiment, strings.Join(names, ", "))
	}

	// Figures fan out across the runner's pool; when several run
	// concurrently, each figure's inner grid is pinned to 1 worker so the
	// -parallel budget is spent once — otherwise outer and inner fan-out
	// would compound to parallel² goroutines.
	figParallel := *parallel
	if len(specs) > 1 && runner.Degree(*parallel) > 1 {
		figParallel = 1
	}

	// Each shard renders into its own buffer so interleaved execution still
	// prints in canonical (registry) order. Per-figure wall-clock is
	// measured inside the shard: concurrent figures contend for cores, so
	// sharded readings are upper bounds; -parallel 1 gives clean times.
	type outcome struct {
		out []byte
		rec benchfmt.FigureRecord
	}
	start := time.Now()
	results, err := runner.Map(len(specs), *parallel, func(shard int) (outcome, error) {
		spec := specs[shard]
		// Engine-scale accounting (schema 6): simulator event/frame counts
		// and heap allocations across the whole figure, from process-wide
		// counters. Exact at -parallel 1 (how CI generates the report);
		// under concurrent figures the deltas interleave and are only an
		// aggregate indication.
		var m0, m1 runtime.MemStats
		ev0, fr0 := netsim.SimCounters()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := spec.Execute(experiments.RunConfig{
			Seed:        *seed,
			Seeds:       *seeds,
			Scale:       *scale,
			Parallelism: figParallel,
			SimWorkers:  simW,
		})
		if err != nil {
			return outcome{}, err
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ev1, fr1 := netsim.SimCounters()
		var buf bytes.Buffer
		res.WriteTable(&buf)
		rec := benchfmt.FigureRecord{
			Name:        spec.Name,
			WallMS:      float64(wall.Microseconds()) / 1000,
			Seeds:       res.Seeds,
			Volatile:    spec.Volatile,
			Metrics:     res.Headline(),
			EventsTotal: ev1 - ev0,
		}
		if s := wall.Seconds(); s > 0 {
			rec.EventsPerSec = float64(rec.EventsTotal) / s
		}
		if frames := fr1 - fr0; frames > 0 {
			rec.AllocsPerFrame = float64(m1.Mallocs-m0.Mallocs) / float64(frames)
		}
		return outcome{out: buf.Bytes(), rec: rec}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	totalMS := float64(time.Since(start).Microseconds()) / 1000

	report := benchfmt.Report{
		Schema:      benchfmt.Schema,
		Seed:        *seed,
		Seeds:       *seeds,
		Scale:       *scale,
		Parallelism: runner.Degree(*parallel),
		SimWorkers:  simW,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: totalMS,
	}
	for _, r := range results {
		os.Stdout.Write(r.out)
		report.Figures = append(report.Figures, r.rec)
	}
	fmt.Printf("\ntotal wall clock: %.1f ms (parallelism %d, %d seeds/point)\n",
		totalMS, report.Parallelism, *seeds)

	if *jsonOut {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
