// daiet-bench regenerates every figure in the paper's evaluation section
// and prints the same rows/series the paper reports.
//
// Usage:
//
//	daiet-bench -experiment all            # everything (default)
//	daiet-bench -experiment fig1a          # Figure 1(a): SGD overlap
//	daiet-bench -experiment fig1b          # Figure 1(b): Adam overlap
//	daiet-bench -experiment fig1-workers   # 2..5 workers side experiment
//	daiet-bench -experiment fig1c          # Figure 1(c): graph analytics
//	daiet-bench -experiment fig3           # Figure 3: WordCount panels
//	daiet-bench -experiment ablations      # design-choice ablations
//	daiet-bench -experiment multirack      # leaf-spine extension
//
// Flags -seed and -scale control reproducibility and problem size; -steps
// shortens the ML runs. -parallel sets the sharded runner's worker-pool
// degree (0 = GOMAXPROCS, 1 = sequential); results are identical at any
// degree. -json additionally writes machine-readable per-figure wall-clock
// and headline metrics to BENCH_results.json so the performance trajectory
// can be tracked across changes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"github.com/daiet/daiet/internal/experiments"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
)

// jsonPath is where -json writes the machine-readable report.
const jsonPath = "BENCH_results.json"

var (
	experiment = flag.String("experiment", "all", "which experiment to run (fig1a|fig1b|fig1-workers|fig1c|fig3|ablations|multirack|all)")
	seed       = flag.Uint64("seed", 7, "experiment seed (same seed, same results)")
	scale      = flag.Float64("scale", 1.0, "problem-size multiplier for Figure 3")
	steps      = flag.Int("steps", 200, "training steps for Figures 1(a)/1(b)")
	graphScale = flag.Int("graph-scale", 16, "log2 vertices for Figure 1(c) (LiveJournal ~ 23)")
	parallel   = flag.Int("parallel", 0, "experiment-runner parallelism (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut    = flag.Bool("json", false, "write per-figure wall-clock and headline metrics to "+jsonPath)
)

// figParallel is the degree figure functions pass to experiment entry
// points. When several figures fan out concurrently it is pinned to 1 so
// the -parallel budget is spent once, at the figure level — otherwise
// outer and inner fan-out would compound to parallel² goroutines.
var figParallel int

// figureJob is one runnable figure: it renders its report into w and
// returns the headline metrics the JSON trajectory tracks.
type figureJob struct {
	name string
	fn   func(w io.Writer) (map[string]float64, error)
}

// figureRecord is one figure's entry in BENCH_results.json.
type figureRecord struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchReport is the BENCH_results.json schema.
type benchReport struct {
	Schema      int            `json:"schema"`
	Seed        uint64         `json:"seed"`
	Parallelism int            `json:"parallelism"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	TotalWallMS float64        `json:"total_wall_ms"`
	Figures     []figureRecord `json:"figures"`
}

func main() {
	log.SetFlags(0)
	flag.Parse()

	all := []figureJob{
		{"fig1a", fig1a},
		{"fig1b", fig1b},
		{"fig1-workers", fig1Workers},
		{"fig1c", fig1c},
		{"fig3", fig3},
		{"ablations", ablations},
		{"multirack", multirack},
	}
	var jobs []figureJob
	for _, j := range all {
		if *experiment == "all" || *experiment == j.name {
			jobs = append(jobs, j)
		}
	}
	if len(jobs) == 0 {
		log.Fatalf("unknown experiment %q", *experiment)
	}
	figParallel = *parallel
	if len(jobs) > 1 && runner.Degree(*parallel) > 1 {
		figParallel = 1
	}

	// Independent figures fan out across the runner's pool; each shard
	// renders into its own buffer so interleaved execution still prints in
	// the canonical order. Per-figure wall-clock is measured inside the
	// shard (concurrent figures contend for cores, so sharded wall-clock
	// readings are upper bounds; -parallel 1 gives clean sequential times).
	type outcome struct {
		out []byte
		rec figureRecord
	}
	start := time.Now()
	results, err := runner.Map(len(jobs), *parallel, func(shard int) (outcome, error) {
		var buf bytes.Buffer
		t0 := time.Now()
		metrics, err := jobs[shard].fn(&buf)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", jobs[shard].name, err)
		}
		return outcome{
			out: buf.Bytes(),
			rec: figureRecord{
				Name:    jobs[shard].name,
				WallMS:  float64(time.Since(t0).Microseconds()) / 1000,
				Metrics: metrics,
			},
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	totalMS := float64(time.Since(start).Microseconds()) / 1000

	report := benchReport{
		Schema:      1,
		Seed:        *seed,
		Parallelism: runner.Degree(*parallel),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: totalMS,
	}
	for _, r := range results {
		os.Stdout.Write(r.out)
		report.Figures = append(report.Figures, r.rec)
	}
	fmt.Printf("\ntotal wall clock: %.1f ms (parallelism %d)\n", totalMS, report.Parallelism)

	if *jsonOut {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n==== %s ====\n", title)
}

func overlap(w io.Writer, fig *experiments.OverlapFigure, paperMean string) {
	fmt.Fprintf(w, "mean overlap %.1f%% (paper: %s); range [%.1f%%, %.1f%%]\n",
		fig.Summary.Mean, paperMean, fig.Summary.Min, fig.Summary.Max)
	fmt.Fprintf(w, "training loss %.3f -> %.3f, holdout accuracy %.2f\n",
		fig.FirstLoss, fig.LastLoss, fig.FinalAccuracy)
	// Decimated series: every 10th step, like reading the figure.
	fmt.Fprintf(w, "%-8s %s\n", "step", "overlap%")
	for i := 0; i < fig.Series.Len(); i += 10 {
		fmt.Fprintf(w, "%-8.0f %.1f\n", fig.Series.X[i], fig.Series.Y[i])
	}
}

func fig1a(w io.Writer) (map[string]float64, error) {
	header(w, "Figure 1(a): SGD (mini-batch 3, 5 workers) tensor-update overlap")
	fig, err := experiments.Figure1a(*seed, *steps)
	if err != nil {
		return nil, err
	}
	overlap(w, fig, "~42.5%, band 34-50%")
	return map[string]float64{
		"mean_overlap_pct": fig.Summary.Mean,
		"final_accuracy":   fig.FinalAccuracy,
	}, nil
}

func fig1b(w io.Writer) (map[string]float64, error) {
	header(w, "Figure 1(b): Adam (mini-batch 100, 5 workers) tensor-update overlap")
	fig, err := experiments.Figure1b(*seed, *steps)
	if err != nil {
		return nil, err
	}
	overlap(w, fig, "~66.5%, band 62-72%")
	return map[string]float64{
		"mean_overlap_pct": fig.Summary.Mean,
		"final_accuracy":   fig.FinalAccuracy,
	}, nil
}

func fig1Workers(w io.Writer) (map[string]float64, error) {
	header(w, "Figure 1 side experiment: overlap vs worker count (paper: increases)")
	pts, err := experiments.Figure1WorkerSweep(*seed, 0, figParallel)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%-10s %s\n", "workers", "overlap%")
	metrics := map[string]float64{}
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %.1f\n", p.Workers, p.OverlapPct)
		metrics[fmt.Sprintf("overlap_pct_%dw", p.Workers)] = p.OverlapPct
	}
	return metrics, nil
}

func fig1c(w io.Writer) (map[string]float64, error) {
	header(w, "Figure 1(c): graph analytics potential traffic reduction (paper band 0.48-0.93)")
	fig, err := experiments.Figure1c(experiments.Figure1cConfig{
		Seed: *seed, Scale: *graphScale, Parallelism: figParallel,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "R-MAT graph: %d vertices, %d edges (LiveJournal stand-in)\n\n",
		fig.Vertices, fig.Edges)
	stats.Table(w, "iteration", fig.PageRank, fig.SSSP, fig.WCC)
	return map[string]float64{
		"pagerank_mean_reduction": fig.PageRank.MeanY(),
		"sssp_mean_reduction":     fig.SSSP.MeanY(),
		"wcc_mean_reduction":      fig.WCC.MeanY(),
	}, nil
}

func fig3(w io.Writer) (map[string]float64, error) {
	header(w, "Figure 3: WordCount, 24 mappers / 12 reducers, 16K register pairs")
	res, err := experiments.Figure3(experiments.Figure3Config{
		Seed: *seed, Scale: *scale, Parallelism: figParallel,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "corpus: %d words, %d unique (mean multiplicity %.1f); spilled pairs: %d\n\n",
		res.TotalWords, res.UniqueWords,
		float64(res.TotalWords)/float64(res.UniqueWords), res.PairsSpilled)
	panel := func(name, paper string, s stats.Summary) {
		fmt.Fprintf(w, "%-28s %s   (paper: %s)\n", name, s.String(), paper)
		fmt.Fprintf(w, "%-28s [%s]\n", "", stats.AsciiBox(s, 0, 100, 40))
	}
	panel("data volume reduction %", "86.9-89.3, median ~88", res.DataReduction)
	panel("reduce time reduction %", "median 83.6", res.ReduceTimeReduction)
	panel("packets vs UDP baseline %", "88.1-90.5, median 90.5", res.PacketsVsUDP)
	panel("packets vs TCP baseline %", "median 42", res.PacketsVsTCP)
	return map[string]float64{
		"data_reduction_median_pct": res.DataReduction.Median,
		"reduce_time_median_pct":    res.ReduceTimeReduction.Median,
		"packets_vs_udp_median_pct": res.PacketsVsUDP.Median,
		"packets_vs_tcp_median_pct": res.PacketsVsTCP.Median,
	}, nil
}

func ablations(w io.Writer) (map[string]float64, error) {
	metrics := map[string]float64{}
	header(w, "Ablation: register table size (paper §5: fewer cells, more unaggregated pairs)")
	pts, err := experiments.AblationRegisterSize(*seed, []int{64, 256, 1024, 4096, 16384}, figParallel)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "table size", "data red. %", "pkt red. %", "spilled pairs")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14.0f %14.1f %14.1f %14d\n", p.X, p.DataReductionPct, p.PacketReductionPct, p.SpilledPairs)
		metrics[fmt.Sprintf("data_reduction_pct_%dcells", int(p.X))] = p.DataReductionPct
	}

	header(w, "Ablation: pairs per packet (paper: 10 from the 200-300B parse budget)")
	pts, err = experiments.AblationPairsPerPacket(*seed, []int{2, 5, 10, 12}, figParallel)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%-14s %14s %14s\n", "pairs/packet", "data red. %", "pkt red. %")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14.0f %14.1f %14.1f\n", p.X, p.DataReductionPct, p.PacketReductionPct)
		metrics[fmt.Sprintf("pkt_reduction_pct_%dpairs", int(p.X))] = p.PacketReductionPct
	}

	header(w, "Ablation: fixed key width (paper §5: 16B keys waste bytes for short words)")
	pts, err = experiments.AblationKeyWidth(*seed, []int{8, 16, 32}, figParallel)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%-14s %14s %14s\n", "key width", "data red. %", "reducer pairs")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14.0f %14.1f %14d\n", p.X, p.DataReductionPct, p.ReducerPairs)
		metrics[fmt.Sprintf("data_reduction_pct_%dB_keys", int(p.X))] = p.DataReductionPct
	}

	header(w, "Ablation: worker-level combiner vs in-network aggregation (paper §1)")
	wc, err := experiments.AblationWorkerCombiner(*seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "worker-level combining alone: %.1f%% pair reduction\n", wc.WorkerLevelReductionPct)
	fmt.Fprintf(w, "plus in-network aggregation:  %.1f%% pair reduction\n", wc.InNetworkReductionPct)
	metrics["worker_level_reduction_pct"] = wc.WorkerLevelReductionPct
	metrics["in_network_reduction_pct"] = wc.InNetworkReductionPct
	return metrics, nil
}

func multirack(w io.Writer) (map[string]float64, error) {
	header(w, "Extension: hierarchical aggregation on a leaf-spine fabric (paper §1 clusters/racks)")
	res, err := experiments.MultiRack(experiments.MultiRackConfig{Seed: *seed, Parallelism: figParallel})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "fabric: %d leaves x %d spines, %d hosts/leaf\n",
		res.Leaves, res.Spines, res.HostsPerLeaf)
	fmt.Fprintf(w, "%-26s %14s %14s %10s\n", "", "baseline", "DAIET", "reduction")
	fmt.Fprintf(w, "%-26s %14d %14d %9.1f%%\n", "core (leaf-spine) bytes",
		res.CoreBytesBaseline, res.CoreBytesDAIET, res.CoreReductionPct)
	fmt.Fprintf(w, "%-26s %14d %14d %9.1f%%\n", "edge (host-leaf) bytes",
		res.EdgeBytesBaseline, res.EdgeBytesDAIET, res.EdgeReductionPct)
	fmt.Fprintf(w, "reducer pairs: %d -> %d\n", res.ReducerPairsBaseline, res.ReducerPairsDAIET)
	return map[string]float64{
		"core_reduction_pct": res.CoreReductionPct,
		"edge_reduction_pct": res.EdgeReductionPct,
	}, nil
}
