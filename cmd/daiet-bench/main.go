// daiet-bench regenerates every figure in the paper's evaluation (plus the
// repository's extensions) through the declarative sweep framework in
// internal/experiments: each figure is a registered Spec, executed as a
// multi-seed ensemble and reported as mean ± 95% confidence interval per
// metric. This command contains no per-figure code — it is one loop over
// the registry.
//
// Usage:
//
//	daiet-bench                            # every registered figure
//	daiet-bench -experiment fig3           # one figure by registry name
//	daiet-bench -seeds 10                  # wider ensembles
//	daiet-bench -scale 0.25                # smaller problem sizes
//	daiet-bench -telemetry out/            # record fabric timelines too
//	daiet-bench -cpuprofile cpu.pprof      # profile the whole run
//
// -seed fixes the base seed (per-trial seeds derive from it, so the same
// seed reproduces the same intervals); -parallel sets the sharded runner's
// worker-pool degree (0 = GOMAXPROCS, 1 = sequential) and -sim-workers the
// intra-simulation partition degree (event-engine domains per fabric;
// "auto" lets every fabric pick min(rack-cut units, GOMAXPROCS)) — results
// are identical at any combination. -json writes machine-readable
// per-figure wall-clock and headline metrics (with CI bounds) to the -out
// path (default BENCH_results.json) so the performance trajectory is
// tracked across changes; CI diffs it against the committed baseline via
// cmd/benchdiff and uploads a parallel-vs-sequential comparison.
//
// -telemetry <dir> additionally replays every registered timeline spec
// (internal/experiments.TimelineSpecs) with the sim-time recorder attached,
// writes each timeline as <dir>/<name>_timeline.txt (render with
// cmd/daiet-trace), and appends a "<name>_telemetry" figure record to the
// -json report whose AllocsPerFrame measures the telemetry-ON allocation
// budget — CI gates it with cmd/benchdiff -gate-allocs.
//
// -cpuprofile, -memprofile and -exectrace write standard runtime/pprof and
// runtime/trace captures of the whole run for go tool pprof / go tool
// trace; they compose with every other flag.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/daiet/daiet/internal/benchfmt"
	"github.com/daiet/daiet/internal/experiments"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/runner"
)

// defaultJSONPath is where -json writes the machine-readable report.
const defaultJSONPath = "BENCH_results.json"

var (
	experiment = flag.String("experiment", "all", "registry name of the figure to run, or \"all\"")
	seed       = flag.Uint64("seed", 7, "base experiment seed (same seed, same results)")
	seeds      = flag.Int("seeds", experiments.DefaultSeeds, "independent seeds per figure point (the CI ensemble)")
	scale      = flag.Float64("scale", 1.0, "problem-size multiplier (1 = paper scale)")
	parallel   = flag.Int("parallel", 0, "experiment-runner parallelism (0 = GOMAXPROCS, 1 = sequential)")
	simWorkers = flag.String("sim-workers", "1", "intra-simulation parallelism: event-engine domains per fabric, or \"auto\" for min(rack-cut units, GOMAXPROCS) per fabric (results identical at any value)")
	jsonOut    = flag.Bool("json", false, "write per-figure wall-clock and headline metrics to the -out path")
	outPath    = flag.String("out", defaultJSONPath, "path for the -json report")
	telemetry  = flag.String("telemetry", "", "directory for recorded fabric timelines (<name>_timeline.txt per timeline spec); empty disables recording")
	cpuProfile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the whole run to this path")
	memProfile = flag.String("memprofile", "", "write a runtime/pprof heap profile (after the run) to this path")
	execTrace  = flag.String("exectrace", "", "write a runtime/trace execution trace of the whole run to this path")
)

// parseSimWorkers maps the -sim-workers flag onto the RunConfig knob:
// "auto" (or 0) selects per-fabric autotuning, anything else is an
// explicit domain count.
func parseSimWorkers(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("-sim-workers: want a non-negative integer or \"auto\", got %q", s)
	}
	return n, nil
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is main's body, factored out so the deferred profile writers flush
// before the process exits — log.Fatal inside would truncate them.
func run() error {
	simW, err := parseSimWorkers(*simWorkers)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			return fmt.Errorf("-exectrace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("-exectrace: %w", err)
		}
		defer trace.Stop()
	}

	var specs []*experiments.Spec
	for _, s := range experiments.Specs() {
		if *experiment == "all" || *experiment == s.Name {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		var names []string
		for _, s := range experiments.Specs() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q (registered: %s)", *experiment, strings.Join(names, ", "))
	}

	// Figures fan out across the runner's pool; when several run
	// concurrently, each figure's inner grid is pinned to 1 worker so the
	// -parallel budget is spent once — otherwise outer and inner fan-out
	// would compound to parallel² goroutines.
	figParallel := *parallel
	if len(specs) > 1 && runner.Degree(*parallel) > 1 {
		figParallel = 1
	}

	// Each shard renders into its own buffer so interleaved execution still
	// prints in canonical (registry) order. Per-figure wall-clock is
	// measured inside the shard: concurrent figures contend for cores, so
	// sharded readings are upper bounds; -parallel 1 gives clean times.
	type outcome struct {
		out []byte
		rec benchfmt.FigureRecord
	}
	start := time.Now()
	results, err := runner.Map(len(specs), *parallel, func(shard int) (outcome, error) {
		spec := specs[shard]
		// Engine-scale accounting (schema 6): simulator event/frame counts
		// and heap allocations across the whole figure, from process-wide
		// counters. Exact at -parallel 1 (how CI generates the report);
		// under concurrent figures the deltas interleave and are only an
		// aggregate indication.
		var m0, m1 runtime.MemStats
		ev0, fr0 := netsim.SimCounters()
		sb0, sw0, si0 := netsim.SyncCounters()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := spec.Execute(experiments.RunConfig{
			Seed:        *seed,
			Seeds:       *seeds,
			Scale:       *scale,
			Parallelism: figParallel,
			SimWorkers:  simW,
		})
		if err != nil {
			return outcome{}, err
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ev1, fr1 := netsim.SimCounters()
		sb1, sw1, si1 := netsim.SyncCounters()
		var buf bytes.Buffer
		res.WriteTable(&buf)
		rec := benchfmt.FigureRecord{
			Name:            spec.Name,
			WallMS:          float64(wall.Microseconds()) / 1000,
			Seeds:           res.Seeds,
			Volatile:        spec.Volatile,
			Metrics:         res.Headline(),
			EventsTotal:     ev1 - ev0,
			SyncBarriers:    sb1 - sb0,
			SyncWindows:     sw1 - sw0,
			SyncIdleWindows: si1 - si0,
		}
		if s := wall.Seconds(); s > 0 {
			rec.EventsPerSec = float64(rec.EventsTotal) / s
		}
		if frames := fr1 - fr0; frames > 0 {
			rec.AllocsPerFrame = float64(m1.Mallocs-m0.Mallocs) / float64(frames)
		}
		return outcome{out: buf.Bytes(), rec: rec}, nil
	})
	if err != nil {
		return err
	}
	totalMS := float64(time.Since(start).Microseconds()) / 1000

	report := benchfmt.Report{
		Schema:      benchfmt.Schema,
		Seed:        *seed,
		Seeds:       *seeds,
		Scale:       *scale,
		Parallelism: runner.Degree(*parallel),
		SimWorkers:  simW,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: totalMS,
	}
	for _, r := range results {
		os.Stdout.Write(r.out)
		report.Figures = append(report.Figures, r.rec)
	}

	if *telemetry != "" {
		recs, err := recordTimelines(*telemetry, simW)
		if err != nil {
			return err
		}
		report.Figures = append(report.Figures, recs...)
	}

	fmt.Printf("\ntotal wall clock: %.1f ms (parallelism %d, %d seeds/point)\n",
		totalMS, report.Parallelism, *seeds)

	if *jsonOut {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// recordTimelines replays every registered timeline spec with the
// recorder attached, writes <dir>/<name>_timeline.txt, and returns one
// "<name>_telemetry" figure record per spec. The runs execute
// sequentially so the process-wide counters yield an exact telemetry-ON
// allocs-per-frame reading for the -gate-allocs budget.
func recordTimelines(dir string, simW int) ([]benchfmt.FigureRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("-telemetry: %w", err)
	}
	var recs []benchfmt.FigureRecord
	for _, spec := range experiments.TimelineSpecs() {
		var m0, m1 runtime.MemStats
		ev0, fr0 := netsim.SimCounters()
		sb0, sw0, si0 := netsim.SyncCounters()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		tl, err := spec.Run(experiments.Trial{Seed: *seed, Scale: *scale, SimWorkers: simW})
		if err != nil {
			return nil, fmt.Errorf("timeline %s: %w", spec.Name, err)
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ev1, fr1 := netsim.SimCounters()
		sb1, sw1, si1 := netsim.SyncCounters()

		path := filepath.Join(dir, spec.Name+"_timeline.txt")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("timeline %s: %w", spec.Name, err)
		}
		if _, err := tl.WriteTo(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("timeline %s: %w", spec.Name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("timeline %s: %w", spec.Name, err)
		}
		fmt.Printf("recorded %s (%d records, %d engine samples)\n",
			path, len(tl.Records), len(tl.Engine))

		rec := benchfmt.FigureRecord{
			Name:            spec.Name + "_telemetry",
			WallMS:          float64(wall.Microseconds()) / 1000,
			Seeds:           1,
			EventsTotal:     ev1 - ev0,
			SyncBarriers:    sb1 - sb0,
			SyncWindows:     sw1 - sw0,
			SyncIdleWindows: si1 - si0,
			Telemetry:       true,
		}
		if s := wall.Seconds(); s > 0 {
			rec.EventsPerSec = float64(rec.EventsTotal) / s
		}
		if frames := fr1 - fr0; frames > 0 {
			rec.AllocsPerFrame = float64(m1.Mallocs-m0.Mallocs) / float64(frames)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
