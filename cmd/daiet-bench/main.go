// daiet-bench regenerates every figure in the paper's evaluation section
// and prints the same rows/series the paper reports.
//
// Usage:
//
//	daiet-bench -experiment all            # everything (default)
//	daiet-bench -experiment fig1a          # Figure 1(a): SGD overlap
//	daiet-bench -experiment fig1b          # Figure 1(b): Adam overlap
//	daiet-bench -experiment fig1-workers   # 2..5 workers side experiment
//	daiet-bench -experiment fig1c          # Figure 1(c): graph analytics
//	daiet-bench -experiment fig3           # Figure 3: WordCount panels
//	daiet-bench -experiment ablations      # design-choice ablations
//
// Flags -seed and -scale control reproducibility and problem size; -steps
// shortens the ML runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/daiet/daiet/internal/experiments"
	"github.com/daiet/daiet/internal/stats"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (fig1a|fig1b|fig1-workers|fig1c|fig3|ablations|all)")
	seed       = flag.Uint64("seed", 7, "experiment seed (same seed, same results)")
	scale      = flag.Float64("scale", 1.0, "problem-size multiplier for Figure 3")
	steps      = flag.Int("steps", 200, "training steps for Figures 1(a)/1(b)")
	graphScale = flag.Int("graph-scale", 16, "log2 vertices for Figure 1(c) (LiveJournal ~ 23)")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	run := func(name string, fn func() error) {
		switch *experiment {
		case "all", name:
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}
	ran := false
	mark := func(fn func() error) func() error {
		return func() error { ran = true; return fn() }
	}
	run("fig1a", mark(fig1a))
	run("fig1b", mark(fig1b))
	run("fig1-workers", mark(fig1Workers))
	run("fig1c", mark(fig1c))
	run("fig3", mark(fig3))
	run("ablations", mark(ablations))
	run("multirack", mark(multirack))
	if !ran {
		log.Fatalf("unknown experiment %q", *experiment)
	}
}

func multirack() error {
	header("Extension: hierarchical aggregation on a leaf-spine fabric (paper §1 clusters/racks)")
	res, err := experiments.MultiRack(experiments.MultiRackConfig{Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("fabric: %d leaves x %d spines, %d hosts/leaf\n",
		res.Leaves, res.Spines, res.HostsPerLeaf)
	fmt.Printf("%-26s %14s %14s %10s\n", "", "baseline", "DAIET", "reduction")
	fmt.Printf("%-26s %14d %14d %9.1f%%\n", "core (leaf-spine) bytes",
		res.CoreBytesBaseline, res.CoreBytesDAIET, res.CoreReductionPct)
	fmt.Printf("%-26s %14d %14d %9.1f%%\n", "edge (host-leaf) bytes",
		res.EdgeBytesBaseline, res.EdgeBytesDAIET, res.EdgeReductionPct)
	fmt.Printf("reducer pairs: %d -> %d\n", res.ReducerPairsBaseline, res.ReducerPairsDAIET)
	return nil
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

func overlap(fig *experiments.OverlapFigure, paperMean string) {
	fmt.Printf("mean overlap %.1f%% (paper: %s); range [%.1f%%, %.1f%%]\n",
		fig.Summary.Mean, paperMean, fig.Summary.Min, fig.Summary.Max)
	fmt.Printf("training loss %.3f -> %.3f, holdout accuracy %.2f\n",
		fig.FirstLoss, fig.LastLoss, fig.FinalAccuracy)
	// Decimated series: every 10th step, like reading the figure.
	fmt.Printf("%-8s %s\n", "step", "overlap%")
	for i := 0; i < fig.Series.Len(); i += 10 {
		fmt.Printf("%-8.0f %.1f\n", fig.Series.X[i], fig.Series.Y[i])
	}
}

func fig1a() error {
	header("Figure 1(a): SGD (mini-batch 3, 5 workers) tensor-update overlap")
	fig, err := experiments.Figure1a(*seed, *steps)
	if err != nil {
		return err
	}
	overlap(fig, "~42.5%, band 34-50%")
	return nil
}

func fig1b() error {
	header("Figure 1(b): Adam (mini-batch 100, 5 workers) tensor-update overlap")
	fig, err := experiments.Figure1b(*seed, *steps)
	if err != nil {
		return err
	}
	overlap(fig, "~66.5%, band 62-72%")
	return nil
}

func fig1Workers() error {
	header("Figure 1 side experiment: overlap vs worker count (paper: increases)")
	pts, err := experiments.Figure1WorkerSweep(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %s\n", "workers", "overlap%")
	for _, p := range pts {
		fmt.Printf("%-10d %.1f\n", p.Workers, p.OverlapPct)
	}
	return nil
}

func fig1c() error {
	header("Figure 1(c): graph analytics potential traffic reduction (paper band 0.48-0.93)")
	fig, err := experiments.Figure1c(experiments.Figure1cConfig{
		Seed: *seed, Scale: *graphScale,
	})
	if err != nil {
		return err
	}
	fmt.Printf("R-MAT graph: %d vertices, %d edges (LiveJournal stand-in)\n\n",
		fig.Vertices, fig.Edges)
	stats.Table(os.Stdout, "iteration", fig.PageRank, fig.SSSP, fig.WCC)
	return nil
}

func fig3() error {
	header("Figure 3: WordCount, 24 mappers / 12 reducers, 16K register pairs")
	res, err := experiments.Figure3(experiments.Figure3Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d words, %d unique (mean multiplicity %.1f); spilled pairs: %d\n\n",
		res.TotalWords, res.UniqueWords,
		float64(res.TotalWords)/float64(res.UniqueWords), res.PairsSpilled)
	panel := func(name, paper string, s stats.Summary) {
		fmt.Printf("%-28s %s   (paper: %s)\n", name, s.String(), paper)
		fmt.Printf("%-28s [%s]\n", "", stats.AsciiBox(s, 0, 100, 40))
	}
	panel("data volume reduction %", "86.9-89.3, median ~88", res.DataReduction)
	panel("reduce time reduction %", "median 83.6", res.ReduceTimeReduction)
	panel("packets vs UDP baseline %", "88.1-90.5, median 90.5", res.PacketsVsUDP)
	panel("packets vs TCP baseline %", "median 42", res.PacketsVsTCP)
	return nil
}

func ablations() error {
	header("Ablation: register table size (paper §5: fewer cells, more unaggregated pairs)")
	pts, err := experiments.AblationRegisterSize(*seed, []int{64, 256, 1024, 4096, 16384})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %14s %14s %14s\n", "table size", "data red. %", "pkt red. %", "spilled pairs")
	for _, p := range pts {
		fmt.Printf("%-14.0f %14.1f %14.1f %14d\n", p.X, p.DataReductionPct, p.PacketReductionPct, p.SpilledPairs)
	}

	header("Ablation: pairs per packet (paper: 10 from the 200-300B parse budget)")
	pts, err = experiments.AblationPairsPerPacket(*seed, []int{2, 5, 10, 12})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %14s %14s\n", "pairs/packet", "data red. %", "pkt red. %")
	for _, p := range pts {
		fmt.Printf("%-14.0f %14.1f %14.1f\n", p.X, p.DataReductionPct, p.PacketReductionPct)
	}

	header("Ablation: fixed key width (paper §5: 16B keys waste bytes for short words)")
	pts, err = experiments.AblationKeyWidth(*seed, []int{8, 16, 32})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %14s %14s\n", "key width", "data red. %", "reducer pairs")
	for _, p := range pts {
		fmt.Printf("%-14.0f %14.1f %14d\n", p.X, p.DataReductionPct, p.ReducerPairs)
	}

	header("Ablation: worker-level combiner vs in-network aggregation (paper §1)")
	wc, err := experiments.AblationWorkerCombiner(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("worker-level combining alone: %.1f%% pair reduction\n", wc.WorkerLevelReductionPct)
	fmt.Printf("plus in-network aggregation:  %.1f%% pair reduction\n", wc.InNetworkReductionPct)
	return nil
}
