package main

import (
	"testing"

	"github.com/daiet/daiet/internal/wire"
)

func TestParseIndices(t *testing.T) {
	got, err := parseIndices("0,3,5-7, 9")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 5, 6, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if out, err := parseIndices(""); err != nil || len(out) != 0 {
		t.Fatalf("empty: %v %v", out, err)
	}
}

func TestParseIndicesErrors(t *testing.T) {
	for _, bad := range []string{"x", "1-x", "x-1", "5-2"} {
		if _, err := parseIndices(bad); err == nil {
			t.Fatalf("%q must fail", bad)
		}
	}
}

func TestTreeSRAMMatchesPaperEstimate(t *testing.T) {
	// The paper sizes 16K pairs of 16B keys + 4B values at ~10 MB SRAM for
	// the whole table set; one tree's registers must be well under that.
	got := treeSRAM(wire.PairGeometry{KeyWidth: 16}, 16384)
	if got < 300<<10 || got > 500<<10 {
		t.Fatalf("per-tree SRAM %d outside ~400 KiB band", got)
	}
	// 12 trees (the paper's reducer count) must fit 10 MB.
	if 12*got > 10<<20 {
		t.Fatalf("12 trees need %d bytes, exceeding the 10 MB budget", 12*got)
	}
}
