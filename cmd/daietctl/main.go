// daietctl is the controller's inspection tool: it builds a fabric plan,
// computes an aggregation tree for a mapper/reducer placement (the paper's
// Figure 2), renders it, and reports the per-switch SRAM the tree would
// consume.
//
// Usage:
//
//	daietctl tree -topology fat-tree -k 4 -mappers 0-11 -reducer 15
//	daietctl tree -topology leaf-spine -leaves 3 -spines 2 -hosts-per-leaf 4 \
//	  -mappers 0,1,2,4,5 -reducer 8 -table-size 16384
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 || os.Args[1] != "tree" {
		log.Fatal("usage: daietctl tree [flags]")
	}
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	var (
		topo         = fs.String("topology", "single", "single | leaf-spine | fat-tree")
		nHosts       = fs.Int("hosts", 8, "hosts (single topology)")
		k            = fs.Int("k", 4, "fat-tree arity")
		leaves       = fs.Int("leaves", 3, "leaf switches (leaf-spine)")
		spines       = fs.Int("spines", 2, "spine switches (leaf-spine)")
		hostsPerLeaf = fs.Int("hosts-per-leaf", 4, "hosts per leaf (leaf-spine)")
		mappersFlag  = fs.String("mappers", "0-3", "mapper host indices (comma list and a-b ranges)")
		reducerFlag  = fs.Int("reducer", 4, "reducer host index")
		tableSize    = fs.Int("table-size", 16384, "register cells per tree per switch")
		keyWidth     = fs.Int("key-width", 16, "fixed key width in bytes")
	)
	_ = fs.Parse(os.Args[2:])

	var plan *topology.Plan
	var err error
	switch *topo {
	case "single":
		plan = topology.SingleSwitch(*nHosts, netsim.LinkConfig{})
	case "leaf-spine":
		plan = topology.LeafSpine(*leaves, *spines, *hostsPerLeaf, netsim.LinkConfig{})
	case "fat-tree":
		plan, err = topology.FatTree(*k, netsim.LinkConfig{})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown topology %q", *topo)
	}

	nw := netsim.New(0)
	programs := map[netsim.NodeID]*core.Program{}
	mkSwitch := func(id netsim.NodeID) netsim.Node {
		p, err := core.NewProgram(core.ProgramConfig{})
		if err != nil {
			log.Fatal(err)
		}
		programs[id] = p
		return p.Switch()
	}
	mkHost := func(netsim.NodeID) netsim.Node { return transport.NewHost() }
	fab := plan.Realize(nw, mkSwitch, mkHost)
	ctl := controller.New(fab, programs)

	idx, err := parseIndices(*mappersFlag)
	if err != nil {
		log.Fatal(err)
	}
	hosts := fab.HostsSorted()
	var mappers []netsim.NodeID
	for _, i := range idx {
		if i < 0 || i >= len(hosts) {
			log.Fatalf("mapper index %d outside [0, %d)", i, len(hosts))
		}
		mappers = append(mappers, hosts[i])
	}
	if *reducerFlag < 0 || *reducerFlag >= len(hosts) {
		log.Fatalf("reducer index %d outside [0, %d)", *reducerFlag, len(hosts))
	}
	reducer := hosts[*reducerFlag]

	tp, err := ctl.PlanTree(reducer, mappers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fabric: %s (%d hosts, %d switches)\n", plan.Name, len(plan.Hosts), len(plan.Switches))
	fmt.Printf("aggregation tree %d: root=host[%d] depth=%d, %d switches\n\n",
		tp.TreeID, *reducerFlag, tp.Depth(), len(tp.SwitchNodes))
	render(tp, reducer)

	geom := wire.PairGeometry{KeyWidth: *keyWidth}
	perTree := treeSRAM(geom, *tableSize)
	fmt.Printf("\nper-switch SRAM for this tree: %.1f KiB (table %d cells, %dB keys)\n",
		float64(perTree)/1024, *tableSize, *keyWidth)
	fmt.Printf("rule of thumb: a 10 MB register budget fits ~%d such trees per switch\n",
		(10<<20)/perTree)
}

// treeSRAM mirrors core's register allocation arithmetic.
func treeSRAM(g wire.PairGeometry, tableSize int) int {
	spillCap := 10
	return g.KeyWidth*tableSize + // keys
		wire.ValueWidth*tableSize + // values
		1*tableSize + // valid bits (byte-granular model)
		4*tableSize + 4 + // index stack + top
		g.PairWidth()*spillCap + 2 + // spillover + count
		4 + 4 // remaining children + seq
}

// render prints the tree as an indented hierarchy.
func render(tp *controller.TreePlan, root netsim.NodeID) {
	children := map[netsim.NodeID][]netsim.NodeID{}
	for child, parent := range tp.Parent {
		children[parent] = append(children[parent], child)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	var walk func(n netsim.NodeID, depth int)
	walk = func(n netsim.NodeID, depth int) {
		kind := "host"
		if topology.IsSwitchID(n) {
			kind = "switch"
		}
		role := ""
		switch {
		case n == root:
			role = "  <- reducer (tree root)"
		case len(children[n]) == 0:
			role = "  <- mapper"
		}
		fmt.Printf("%s%s %d (children: %d)%s\n",
			strings.Repeat("  ", depth), kind, n, tp.Children[n], role)
		for _, c := range children[n] {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// parseIndices parses "0,1,4-7" into a sorted index list.
func parseIndices(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if a, b, ok := strings.Cut(part, "-"); ok {
			lo, err := strconv.Atoi(a)
			if err != nil {
				return nil, fmt.Errorf("bad range %q: %w", part, err)
			}
			hi, err := strconv.Atoi(b)
			if err != nil {
				return nil, fmt.Errorf("bad range %q: %w", part, err)
			}
			if hi < lo {
				return nil, fmt.Errorf("range %q is inverted", part)
			}
			for i := lo; i <= hi; i++ {
				out = append(out, i)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", part, err)
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}
