// benchdiff compares two BENCH_results.json reports (the committed
// baseline vs a fresh run) and gates performance regressions in CI: it
// exits non-zero when total wall-clock regresses by more than
// -max-regress-pct (default 20%), or when any single figure regresses by
// more than -max-figure-regress-pct (default 30%; figures whose baseline
// wall-clock is under -min-figure-ms, default 100 ms, are exempt — on a
// noisy runner a tens-of-ms figure swings 50% between identical builds,
// measured while calibrating this gate). Headline-metric drift is
// reported — means that left
// the baseline's 95% confidence interval — but does not fail the build:
// metric movement is a finding, wall-clock regression is a defect.
//
// The exception is -gate-drift: a comma-separated list of
// figure/metric-prefix pairs (e.g. "bigincast/drop_rate_pct") whose drift
// IS a defect. Those metrics are simulation-deterministic contracts — a
// bigincast drop rate leaving the baseline's CI means the shared-buffer
// admission model changed behaviour, not that a runner was noisy — so CI
// fails on them.
//
// Usage:
//
//	benchdiff -baseline BENCH_results.json -current /tmp/new.json \
//	  -gate-drift bigincast/drop_rate_pct
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/daiet/daiet/internal/benchfmt"
)

func load(path string) (*benchfmt.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchfmt.Schema {
		return nil, fmt.Errorf("%s: schema %d, want %d (regenerate with daiet-bench -json)", path, r.Schema, benchfmt.Schema)
	}
	return &r, nil
}

// regressPct is the wall-clock movement in percent: positive = slower.
// A non-positive baseline yields 0 (nothing meaningful to gate on).
func regressPct(baseMS, curMS float64) float64 {
	if baseMS <= 0 {
		return 0
	}
	return 100 * (curMS - baseMS) / baseMS
}

// budgets is the wall-clock gate configuration.
type budgets struct {
	maxTotalPct  float64 // total wall-clock regression budget
	maxFigurePct float64 // per-figure wall-clock regression budget
	minFigureMS  float64 // figures with baseline wall below this are exempt
}

// driftGate names one figure/metric-prefix pair whose headline drift fails
// the build instead of merely being reported.
type driftGate struct {
	figure string
	metric string // bare metric name; label-qualified headline keys match as prefixes
}

// allocGate is one figure's allocation budget: the current report's
// allocs_per_frame must not exceed limit. Unlike drift gates it compares
// against an absolute budget, not the baseline CI — the zero-alloc hot
// path is a design contract, not a statistical baseline.
type allocGate struct {
	figure string
	limit  float64
}

// parseAllocGates parses the -gate-allocs flag: comma-separated
// "figure/limit" entries (empty = no allocation gating).
func parseAllocGates(s string) ([]allocGate, error) {
	if s == "" {
		return nil, nil
	}
	var gates []allocGate
	for _, entry := range strings.Split(s, ",") {
		fig, lim, ok := strings.Cut(strings.TrimSpace(entry), "/")
		if !ok || fig == "" || lim == "" {
			return nil, fmt.Errorf("benchdiff: -gate-allocs entry %q, want figure/limit", entry)
		}
		var limit float64
		if _, err := fmt.Sscanf(lim, "%g", &limit); err != nil || limit < 0 {
			return nil, fmt.Errorf("benchdiff: -gate-allocs entry %q: limit must be a non-negative number", entry)
		}
		gates = append(gates, allocGate{figure: fig, limit: limit})
	}
	return gates, nil
}

// checkAllocGates applies the allocation budgets against the current
// report. A gate naming a figure absent from the current report is a dead
// contract and fails, exactly like a dead drift gate.
func checkAllocGates(gates []allocGate, cur *benchfmt.Report) []string {
	var failures []string
	for _, g := range gates {
		found := false
		for _, f := range cur.Figures {
			if f.Name != g.figure {
				continue
			}
			found = true
			if f.AllocsPerFrame > g.limit {
				failures = append(failures, fmt.Sprintf(
					"figure %s allocates %.3f per frame (budget %g)",
					f.Name, f.AllocsPerFrame, g.limit))
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf(
				"-gate-allocs entry %s/%g matches no figure in the current report", g.figure, g.limit))
		}
	}
	return failures
}

// parseDriftGates parses the -gate-drift flag: comma-separated
// "figure/metric" entries (empty = no drift gating).
func parseDriftGates(s string) ([]driftGate, error) {
	if s == "" {
		return nil, nil
	}
	var gates []driftGate
	for _, entry := range strings.Split(s, ",") {
		fig, metric, ok := strings.Cut(strings.TrimSpace(entry), "/")
		if !ok || fig == "" || metric == "" {
			return nil, fmt.Errorf("benchdiff: -gate-drift entry %q, want figure/metric", entry)
		}
		gates = append(gates, driftGate{figure: fig, metric: metric})
	}
	return gates, nil
}

// gated reports whether a drift on (figure, headline key) is fatal. Sweep
// figures qualify headline keys with the point label (drop_rate_pct_128kib),
// so the gate's metric matches as a prefix, exactly like Volatile entries.
func gated(gates []driftGate, figure, key string) bool {
	for _, g := range gates {
		if g.figure != figure {
			continue
		}
		if key == g.metric || strings.HasPrefix(key, g.metric+"_") {
			return true
		}
	}
	return false
}

// check applies the budgets and returns one failure line per violation
// (empty = gate passes). Figures present on only one side never fail the
// gate: additions and removals are intentional changes, not regressions.
func (b budgets) check(base, cur *benchfmt.Report) []string {
	var failures []string
	baseFigs := map[string]benchfmt.FigureRecord{}
	for _, f := range base.Figures {
		baseFigs[f.Name] = f
	}
	for _, f := range cur.Figures {
		bf, ok := baseFigs[f.Name]
		if !ok || bf.WallMS < b.minFigureMS {
			continue
		}
		if delta := regressPct(bf.WallMS, f.WallMS); delta > b.maxFigurePct {
			failures = append(failures, fmt.Sprintf(
				"figure %s wall-clock regressed %.1f%% (%.1f ms -> %.1f ms, budget %.0f%%)",
				f.Name, delta, bf.WallMS, f.WallMS, b.maxFigurePct))
		}
	}
	if delta := regressPct(base.TotalWallMS, cur.TotalWallMS); delta > b.maxTotalPct {
		failures = append(failures, fmt.Sprintf(
			"total wall-clock regressed %.1f%% (budget %.0f%%)", delta, b.maxTotalPct))
	}
	return failures
}

// run is the whole tool behind flag parsing, testable against fixture
// reports; it writes the human report to out and returns an error when the
// gate fails.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_results.json", "committed baseline report")
	currentPath := fs.String("current", "", "freshly generated report (required)")
	maxRegress := fs.Float64("max-regress-pct", 20, "max tolerated total wall-clock regression in percent")
	maxFigRegress := fs.Float64("max-figure-regress-pct", 30, "max tolerated per-figure wall-clock regression in percent")
	minFigureMS := fs.Float64("min-figure-ms", 100, "per-figure gate only applies when the baseline figure took at least this many ms")
	gateDrift := fs.String("gate-drift", "", "comma-separated figure/metric-prefix pairs whose headline drift fails the build (e.g. bigincast/drop_rate_pct)")
	gateAllocs := fs.String("gate-allocs", "", "comma-separated figure/limit pairs: fail when a figure's allocs_per_frame exceeds the limit (e.g. megaincast/2.0)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("benchdiff: -current is required")
	}
	gates, err := parseDriftGates(*gateDrift)
	if err != nil {
		return err
	}
	aGates, err := parseAllocGates(*gateAllocs)
	if err != nil {
		return err
	}
	base, err := load(*baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(*currentPath)
	if err != nil {
		return err
	}
	// Reports are only comparable when they ran the same experiment: same
	// ensemble width and problem size (wall-clock and CIs both depend on
	// them). Parallelism degrees (trial pool and intra-sim domains) are
	// allowed to differ but skew wall-clock, so flag them rather than
	// silently comparing.
	if base.Seeds != cur.Seeds || base.Scale != cur.Scale {
		return fmt.Errorf("benchdiff: incomparable reports: baseline seeds=%d scale=%g vs current seeds=%d scale=%g",
			base.Seeds, base.Scale, cur.Seeds, cur.Scale)
	}
	if base.Parallelism != cur.Parallelism {
		fmt.Fprintf(out, "note: parallelism differs (baseline %d, current %d); wall-clock deltas are skewed\n",
			base.Parallelism, cur.Parallelism)
	}
	if base.SimWorkers != cur.SimWorkers {
		fmt.Fprintf(out, "note: sim-workers differs (baseline %d, current %d); wall-clock deltas show intra-sim scaling\n",
			base.SimWorkers, cur.SimWorkers)
	}

	baseFigs := map[string]benchfmt.FigureRecord{}
	for _, f := range base.Figures {
		baseFigs[f.Name] = f
	}

	// Per-figure wall-clock movement.
	fmt.Fprintf(out, "%-28s %12s %12s %9s\n", "figure", "base ms", "current ms", "delta")
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Name]
		if !ok {
			fmt.Fprintf(out, "%-28s %12s %12.1f %9s\n", f.Name, "-", f.WallMS, "new")
			continue
		}
		fmt.Fprintf(out, "%-28s %12.1f %12.1f %8.1f%%\n",
			f.Name, b.WallMS, f.WallMS, regressPct(b.WallMS, f.WallMS))
	}
	for _, b := range base.Figures {
		found := false
		for _, f := range cur.Figures {
			found = found || f.Name == b.Name
		}
		if !found {
			fmt.Fprintf(out, "%-28s %12.1f %12s %9s\n", b.Name, b.WallMS, "-", "GONE")
		}
	}

	// Liveness of the -gate-drift contracts is judged against the CURRENT
	// report alone (a gated figure absent from the baseline is an
	// intentional addition, not a dead gate), and only against gateable
	// metrics: a gate matching nothing but Volatile metrics is as dead as
	// one matching nothing.
	gateMatched := make([]bool, len(gates))
	for _, f := range cur.Figures {
		for name := range f.Metrics {
			if f.IsVolatile(name) {
				continue
			}
			for gi := range gates {
				if gated(gates[gi:gi+1], f.Name, name) {
					gateMatched[gi] = true
				}
			}
		}
	}

	// Headline drift: current means outside the baseline's 95% CI.
	var drifted int
	var driftFailures []string
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Name]
		if !ok {
			continue
		}
		names := make([]string, 0, len(f.Metrics))
		for name := range f.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if f.IsVolatile(name) || b.IsVolatile(name) {
				continue // wall-clock-derived: never comparable across runs/hosts
			}
			be, ok := b.Metrics[name]
			if !ok {
				fmt.Fprintf(out, "drift: %s/%s is new (%.3f)\n", f.Name, name, f.Metrics[name].Mean)
				continue
			}
			ce := f.Metrics[name]
			if ce.Mean < be.Lo || ce.Mean > be.Hi {
				drifted++
				fmt.Fprintf(out, "drift: %s/%s mean %.3f outside baseline CI [%.3f, %.3f]\n",
					f.Name, name, ce.Mean, be.Lo, be.Hi)
				if gated(gates, f.Name, name) {
					driftFailures = append(driftFailures, fmt.Sprintf(
						"gated metric %s/%s drifted: mean %.3f outside baseline CI [%.3f, %.3f]",
						f.Name, name, ce.Mean, be.Lo, be.Hi))
				}
			}
		}
	}
	// A gate that matches no gateable metric in the current report is a
	// dead contract (typo, a rename out from under CI, or a metric that
	// became Volatile): fail loudly instead of silently never gating
	// again.
	for gi, g := range gates {
		if !gateMatched[gi] {
			driftFailures = append(driftFailures, fmt.Sprintf(
				"-gate-drift entry %s/%s matches no gateable metric in the current report", g.figure, g.metric))
		}
	}
	if drifted == 0 {
		fmt.Fprintln(out, "headline metrics: all current means inside baseline CIs")
	}

	fmt.Fprintf(out, "total wall clock: %.1f ms -> %.1f ms (%+.1f%%)\n",
		base.TotalWallMS, cur.TotalWallMS, regressPct(base.TotalWallMS, cur.TotalWallMS))

	// Allocation budgets: absolute contracts on the current report.
	for _, g := range aGates {
		for _, f := range cur.Figures {
			if f.Name == g.figure {
				fmt.Fprintf(out, "allocs: %s %.3f per frame (budget %g), %.0f events/s\n",
					f.Name, f.AllocsPerFrame, g.limit, f.EventsPerSec)
			}
		}
	}

	b := budgets{maxTotalPct: *maxRegress, maxFigurePct: *maxFigRegress, minFigureMS: *minFigureMS}
	failures := append(driftFailures, checkAllocGates(aGates, cur)...)
	failures = append(failures, b.check(base, cur)...)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "FAIL: %s\n", f)
		}
		return fmt.Errorf("benchdiff: FAIL: %d gate violation(s)", len(failures))
	}
	fmt.Fprintln(out, "benchdiff: OK")
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
