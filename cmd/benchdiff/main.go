// benchdiff compares two BENCH_results.json reports (the committed
// baseline vs a fresh run) and gates performance regressions in CI: it
// exits non-zero when total wall-clock regresses by more than
// -max-regress-pct (default 20%). Headline-metric drift is reported —
// means that left the baseline's 95% confidence interval — but does not
// fail the build: metric movement is a finding, wall-clock regression is a
// defect.
//
// Usage:
//
//	benchdiff -baseline BENCH_results.json -current /tmp/new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/daiet/daiet/internal/benchfmt"
)

var (
	baselinePath = flag.String("baseline", "BENCH_results.json", "committed baseline report")
	currentPath  = flag.String("current", "", "freshly generated report (required)")
	maxRegress   = flag.Float64("max-regress-pct", 20, "max tolerated total wall-clock regression in percent")
)

func load(path string) (*benchfmt.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchfmt.Schema {
		return nil, fmt.Errorf("%s: schema %d, want %d (regenerate with daiet-bench -json)", path, r.Schema, benchfmt.Schema)
	}
	return &r, nil
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	if *currentPath == "" {
		log.Fatal("benchdiff: -current is required")
	}
	base, err := load(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		log.Fatal(err)
	}
	// Reports are only comparable when they ran the same experiment: same
	// ensemble width and problem size (wall-clock and CIs both depend on
	// them). Parallelism is allowed to differ but skews wall-clock, so flag
	// it rather than silently comparing.
	if base.Seeds != cur.Seeds || base.Scale != cur.Scale {
		log.Fatalf("benchdiff: incomparable reports: baseline seeds=%d scale=%g vs current seeds=%d scale=%g",
			base.Seeds, base.Scale, cur.Seeds, cur.Scale)
	}
	if base.Parallelism != cur.Parallelism {
		fmt.Printf("note: parallelism differs (baseline %d, current %d); wall-clock deltas are skewed\n",
			base.Parallelism, cur.Parallelism)
	}

	baseFigs := map[string]benchfmt.FigureRecord{}
	for _, f := range base.Figures {
		baseFigs[f.Name] = f
	}

	// Per-figure wall-clock movement (informational: single figures are
	// noisy; the gate is on the total).
	fmt.Printf("%-28s %12s %12s %9s\n", "figure", "base ms", "current ms", "delta")
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Name]
		if !ok {
			fmt.Printf("%-28s %12s %12.1f %9s\n", f.Name, "-", f.WallMS, "new")
			continue
		}
		fmt.Printf("%-28s %12.1f %12.1f %8.1f%%\n",
			f.Name, b.WallMS, f.WallMS, 100*(f.WallMS-b.WallMS)/b.WallMS)
	}
	for _, b := range base.Figures {
		found := false
		for _, f := range cur.Figures {
			found = found || f.Name == b.Name
		}
		if !found {
			fmt.Printf("%-28s %12.1f %12s %9s\n", b.Name, b.WallMS, "-", "GONE")
		}
	}

	// Headline drift: current means outside the baseline's 95% CI.
	var drifted int
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Name]
		if !ok {
			continue
		}
		names := make([]string, 0, len(f.Metrics))
		for name := range f.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			be, ok := b.Metrics[name]
			if !ok {
				fmt.Printf("drift: %s/%s is new (%.3f)\n", f.Name, name, f.Metrics[name].Mean)
				continue
			}
			ce := f.Metrics[name]
			if ce.Mean < be.Lo || ce.Mean > be.Hi {
				drifted++
				fmt.Printf("drift: %s/%s mean %.3f outside baseline CI [%.3f, %.3f]\n",
					f.Name, name, ce.Mean, be.Lo, be.Hi)
			}
		}
	}
	if drifted == 0 {
		fmt.Println("headline metrics: all current means inside baseline CIs")
	}

	delta := 100 * (cur.TotalWallMS - base.TotalWallMS) / base.TotalWallMS
	fmt.Printf("total wall clock: %.1f ms -> %.1f ms (%+.1f%%)\n",
		base.TotalWallMS, cur.TotalWallMS, delta)
	if delta > *maxRegress {
		log.Fatalf("benchdiff: FAIL: total wall-clock regressed %.1f%% (budget %.0f%%)", delta, *maxRegress)
	}
	fmt.Println("benchdiff: OK")
}
