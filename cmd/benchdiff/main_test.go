package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/benchfmt"
	"github.com/daiet/daiet/internal/stats"
)

func TestRegressPct(t *testing.T) {
	cases := []struct {
		base, cur, want float64
	}{
		{100, 100, 0},
		{100, 130, 30},
		{100, 50, -50},
		{200, 260, 30},
		{0, 50, 0},  // no meaningful baseline: never gates
		{-1, 50, 0}, // defensive: corrupt baseline
	}
	for _, c := range cases {
		if got := regressPct(c.base, c.cur); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("regressPct(%g, %g) = %g, want %g", c.base, c.cur, got, c.want)
		}
	}
}

func report(totalMS float64, figs map[string]float64) *benchfmt.Report {
	r := &benchfmt.Report{
		Schema: benchfmt.Schema, Seeds: 5, Scale: 1, Parallelism: 1, SimWorkers: 1,
		TotalWallMS: totalMS,
	}
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names) // stable figure order keeps fixtures deterministic
	for _, name := range names {
		r.Figures = append(r.Figures, benchfmt.FigureRecord{
			Name: name, WallMS: figs[name], Seeds: 5,
			Metrics: map[string]stats.Estimate{"m": {N: 5, Mean: 1, Lo: 0.5, Hi: 1.5}},
		})
	}
	return r
}

func TestBudgetsCheck(t *testing.T) {
	b := budgets{maxTotalPct: 20, maxFigurePct: 30, minFigureMS: 5}

	base := report(1000, map[string]float64{"fig": 500, "tiny": 1})

	// Inside every budget: no failures.
	if f := b.check(base, report(1100, map[string]float64{"fig": 600, "tiny": 3})); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
	// Figure over its budget, total inside: exactly the figure fails.
	f := b.check(base, report(1100, map[string]float64{"fig": 700, "tiny": 1}))
	if len(f) != 1 || !strings.Contains(f[0], "figure fig") {
		t.Fatalf("want one per-figure failure, got %v", f)
	}
	// Exactly at the boundary: 30% is within budget (gate is strict >).
	if f := b.check(base, report(1000, map[string]float64{"fig": 650, "tiny": 1})); len(f) != 0 {
		t.Fatalf("30%% must pass a 30%% budget: %v", f)
	}
	// Sub-threshold figures are exempt however much they regress.
	if f := b.check(base, report(1000, map[string]float64{"fig": 500, "tiny": 4})); len(f) != 0 {
		t.Fatalf("tiny figure must be exempt: %v", f)
	}
	// Total over budget.
	f = b.check(base, report(1300, map[string]float64{"fig": 500, "tiny": 1}))
	if len(f) != 1 || !strings.Contains(f[0], "total wall-clock") {
		t.Fatalf("want one total failure, got %v", f)
	}
	// Both budgets blown: two failures.
	f = b.check(base, report(1300, map[string]float64{"fig": 800, "tiny": 1}))
	if len(f) != 2 {
		t.Fatalf("want two failures, got %v", f)
	}
	// New and removed figures never gate.
	if f := b.check(base, report(1000, map[string]float64{"other": 900})); len(f) != 0 {
		t.Fatalf("figure churn must not gate: %v", f)
	}
}

func TestIsVolatile(t *testing.T) {
	f := benchfmt.FigureRecord{Volatile: []string{"wall_ms", "reduce_time_median_pct"}}
	for key, want := range map[string]bool{
		"wall_ms":                true, // single-point figure: bare name
		"wall_ms_4w":             true, // sweep figure: label-qualified
		"reduce_time_median_pct": true,
		"wall_msx":               false, // prefix without separator is a different metric
		"core_reduction_pct":     false,
	} {
		if got := f.IsVolatile(key); got != want {
			t.Fatalf("IsVolatile(%q) = %v, want %v", key, got, want)
		}
	}
}

// writeFixture marshals a report into dir and returns its path.
func writeFixture(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCLI exercises the whole tool against fixture reports on disk —
// flags, loading, comparability checks, and both gate outcomes.
func TestRunCLI(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", report(1000, map[string]float64{"fig": 500}))

	// Pass: modest movement.
	cur := writeFixture(t, dir, "ok.json", report(1050, map[string]float64{"fig": 550}))
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK:\n%s", out.String())
	}

	// Fail: one figure regresses 60% while the total stays inside budget.
	cur = writeFixture(t, dir, "figslow.json", report(1100, map[string]float64{"fig": 800}))
	out.Reset()
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "FAIL: figure fig") {
		t.Fatalf("per-figure gate did not fire: err=%v\n%s", err, out.String())
	}

	// The per-figure budget is tunable from the CLI.
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-max-figure-regress-pct", "80"}, &out); err != nil {
		t.Fatalf("raised budget still failed: %v\n%s", err, out.String())
	}

	// Fail: total regresses beyond budget.
	cur = writeFixture(t, dir, "totalslow.json", report(1500, map[string]float64{"fig": 500}))
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("total gate did not fire")
	}

	// Incomparable reports are rejected.
	bad := report(1000, map[string]float64{"fig": 500})
	bad.Seeds = 3
	curBad := writeFixture(t, dir, "seeds.json", bad)
	if err := run([]string{"-baseline", base, "-current", curBad}, &out); err == nil {
		t.Fatal("seed mismatch accepted")
	}

	// Schema drift is rejected.
	old := report(1000, map[string]float64{"fig": 500})
	old.Schema = benchfmt.Schema - 1
	curOld := writeFixture(t, dir, "schema.json", old)
	if err := run([]string{"-baseline", base, "-current", curOld}, &out); err == nil {
		t.Fatal("old schema accepted")
	}

	// -current is mandatory.
	if err := run([]string{"-baseline", base}, &out); err == nil {
		t.Fatal("missing -current accepted")
	}
}
