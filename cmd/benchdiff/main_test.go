package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/benchfmt"
	"github.com/daiet/daiet/internal/stats"
)

func TestRegressPct(t *testing.T) {
	cases := []struct {
		base, cur, want float64
	}{
		{100, 100, 0},
		{100, 130, 30},
		{100, 50, -50},
		{200, 260, 30},
		{0, 50, 0},  // no meaningful baseline: never gates
		{-1, 50, 0}, // defensive: corrupt baseline
	}
	for _, c := range cases {
		if got := regressPct(c.base, c.cur); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("regressPct(%g, %g) = %g, want %g", c.base, c.cur, got, c.want)
		}
	}
}

func report(totalMS float64, figs map[string]float64) *benchfmt.Report {
	r := &benchfmt.Report{
		Schema: benchfmt.Schema, Seeds: 5, Scale: 1, Parallelism: 1, SimWorkers: 1,
		TotalWallMS: totalMS,
	}
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names) // stable figure order keeps fixtures deterministic
	for _, name := range names {
		r.Figures = append(r.Figures, benchfmt.FigureRecord{
			Name: name, WallMS: figs[name], Seeds: 5,
			Metrics: map[string]stats.Estimate{"m": {N: 5, Mean: 1, Lo: 0.5, Hi: 1.5}},
		})
	}
	return r
}

func TestBudgetsCheck(t *testing.T) {
	b := budgets{maxTotalPct: 20, maxFigurePct: 30, minFigureMS: 5}

	base := report(1000, map[string]float64{"fig": 500, "tiny": 1})

	// Inside every budget: no failures.
	if f := b.check(base, report(1100, map[string]float64{"fig": 600, "tiny": 3})); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
	// Figure over its budget, total inside: exactly the figure fails.
	f := b.check(base, report(1100, map[string]float64{"fig": 700, "tiny": 1}))
	if len(f) != 1 || !strings.Contains(f[0], "figure fig") {
		t.Fatalf("want one per-figure failure, got %v", f)
	}
	// Exactly at the boundary: 30% is within budget (gate is strict >).
	if f := b.check(base, report(1000, map[string]float64{"fig": 650, "tiny": 1})); len(f) != 0 {
		t.Fatalf("30%% must pass a 30%% budget: %v", f)
	}
	// Sub-threshold figures are exempt however much they regress.
	if f := b.check(base, report(1000, map[string]float64{"fig": 500, "tiny": 4})); len(f) != 0 {
		t.Fatalf("tiny figure must be exempt: %v", f)
	}
	// Total over budget.
	f = b.check(base, report(1300, map[string]float64{"fig": 500, "tiny": 1}))
	if len(f) != 1 || !strings.Contains(f[0], "total wall-clock") {
		t.Fatalf("want one total failure, got %v", f)
	}
	// Both budgets blown: two failures.
	f = b.check(base, report(1300, map[string]float64{"fig": 800, "tiny": 1}))
	if len(f) != 2 {
		t.Fatalf("want two failures, got %v", f)
	}
	// New and removed figures never gate.
	if f := b.check(base, report(1000, map[string]float64{"other": 900})); len(f) != 0 {
		t.Fatalf("figure churn must not gate: %v", f)
	}
}

func TestIsVolatile(t *testing.T) {
	f := benchfmt.FigureRecord{Volatile: []string{"wall_ms", "reduce_time_median_pct"}}
	for key, want := range map[string]bool{
		"wall_ms":                true, // single-point figure: bare name
		"wall_ms_4w":             true, // sweep figure: label-qualified
		"reduce_time_median_pct": true,
		"wall_msx":               false, // prefix without separator is a different metric
		"core_reduction_pct":     false,
	} {
		if got := f.IsVolatile(key); got != want {
			t.Fatalf("IsVolatile(%q) = %v, want %v", key, got, want)
		}
	}
}

// writeFixture marshals a report into dir and returns its path.
func writeFixture(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCLI exercises the whole tool against fixture reports on disk —
// flags, loading, comparability checks, and both gate outcomes.
func TestRunCLI(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", report(1000, map[string]float64{"fig": 500}))

	// Pass: modest movement.
	cur := writeFixture(t, dir, "ok.json", report(1050, map[string]float64{"fig": 550}))
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK:\n%s", out.String())
	}

	// Fail: one figure regresses 60% while the total stays inside budget.
	cur = writeFixture(t, dir, "figslow.json", report(1100, map[string]float64{"fig": 800}))
	out.Reset()
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "FAIL: figure fig") {
		t.Fatalf("per-figure gate did not fire: err=%v\n%s", err, out.String())
	}

	// The per-figure budget is tunable from the CLI.
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-max-figure-regress-pct", "80"}, &out); err != nil {
		t.Fatalf("raised budget still failed: %v\n%s", err, out.String())
	}

	// Fail: total regresses beyond budget.
	cur = writeFixture(t, dir, "totalslow.json", report(1500, map[string]float64{"fig": 500}))
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("total gate did not fire")
	}

	// Incomparable reports are rejected.
	bad := report(1000, map[string]float64{"fig": 500})
	bad.Seeds = 3
	curBad := writeFixture(t, dir, "seeds.json", bad)
	if err := run([]string{"-baseline", base, "-current", curBad}, &out); err == nil {
		t.Fatal("seed mismatch accepted")
	}

	// Schema drift is rejected.
	old := report(1000, map[string]float64{"fig": 500})
	old.Schema = benchfmt.Schema - 1
	curOld := writeFixture(t, dir, "schema.json", old)
	if err := run([]string{"-baseline", base, "-current", curOld}, &out); err == nil {
		t.Fatal("old schema accepted")
	}

	// -current is mandatory.
	if err := run([]string{"-baseline", base}, &out); err == nil {
		t.Fatal("missing -current accepted")
	}
}

func TestParseDriftGates(t *testing.T) {
	if g, err := parseDriftGates(""); err != nil || g != nil {
		t.Fatalf("empty flag: %v %v", g, err)
	}
	g, err := parseDriftGates("bigincast/drop_rate_pct, incast/drop_rate_pct")
	if err != nil || len(g) != 2 || g[0].figure != "bigincast" || g[1].metric != "drop_rate_pct" {
		t.Fatalf("parse: %v %v", g, err)
	}
	for _, bad := range []string{"bigincast", "/m", "f/", "a/b,,"} {
		if _, err := parseDriftGates(bad); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

func TestGatedMatching(t *testing.T) {
	gates := []driftGate{{figure: "bigincast", metric: "drop_rate_pct"}}
	for key, want := range map[string]bool{
		"drop_rate_pct":           true,  // single-point: bare name
		"drop_rate_pct_128kib_a2": true,  // sweep: label-qualified
		"static_drop_rate_pct":    false, // different metric, shared suffix
		"drop_rate_pctx":          false, // prefix without separator
	} {
		if got := gated(gates, "bigincast", key); got != want {
			t.Fatalf("gated(bigincast, %q) = %v, want %v", key, got, want)
		}
	}
	if gated(gates, "incast", "drop_rate_pct") {
		t.Fatal("wrong figure matched")
	}
}

// driftedReport clones report() but moves metric "m" outside the baseline
// CI on one figure.
func driftedReport(totalMS float64, figs map[string]float64, driftFig string) *benchfmt.Report {
	r := report(totalMS, figs)
	for i := range r.Figures {
		if r.Figures[i].Name == driftFig {
			r.Figures[i].Metrics = map[string]stats.Estimate{"m": {N: 5, Mean: 9, Lo: 8.5, Hi: 9.5}}
		}
	}
	return r
}

// TestRunCLIDriftGate: drift is informational by default and fatal exactly
// for the figures/metrics named by -gate-drift.
func TestRunCLIDriftGate(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", report(1000, map[string]float64{"big": 500, "fig": 500}))
	cur := writeFixture(t, dir, "drift.json",
		driftedReport(1000, map[string]float64{"big": 500, "fig": 500}, "big"))

	// Ungated: reported, build passes.
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("ungated drift failed the build: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drift: big/m") {
		t.Fatalf("drift not reported:\n%s", out.String())
	}

	// Gated on the drifting figure: build fails.
	out.Reset()
	err := run([]string{"-baseline", base, "-current", cur, "-gate-drift", "big/m"}, &out)
	if err == nil || !strings.Contains(out.String(), "FAIL: gated metric big/m") {
		t.Fatalf("gated drift did not fail: err=%v\n%s", err, out.String())
	}

	// Gated on a non-drifting figure: build passes.
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-gate-drift", "fig/m"}, &out); err != nil {
		t.Fatalf("gate on stable figure failed: %v\n%s", err, out.String())
	}

	// Malformed gate flag: rejected.
	if err := run([]string{"-baseline", base, "-current", cur, "-gate-drift", "nonsense"}, &out); err == nil {
		t.Fatal("malformed -gate-drift accepted")
	}

	// A gate naming a figure/metric absent from the report is a dead
	// contract and must fail, not silently stop gating.
	out.Reset()
	err = run([]string{"-baseline", base, "-current", cur, "-gate-drift", "gone/m"}, &out)
	if err == nil || !strings.Contains(out.String(), "matches no gateable metric") {
		t.Fatalf("dead gate entry did not fail: err=%v\n%s", err, out.String())
	}

	// A gated figure that exists only in the current report is an
	// intentional addition: the gate is live, nothing compares, build
	// passes (the one-sided-figure rule).
	curFresh := writeFixture(t, dir, "fresh.json",
		report(1000, map[string]float64{"big": 500, "fig": 500, "fresh": 10}))
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", curFresh, "-gate-drift", "fresh/m"}, &out); err != nil {
		t.Fatalf("gate on baseline-new figure failed: %v\n%s", err, out.String())
	}

	// A gate whose only match is a Volatile metric can never fire: dead
	// contract, must fail.
	volRep := report(1000, map[string]float64{"big": 500, "fig": 500})
	for i := range volRep.Figures {
		if volRep.Figures[i].Name == "big" {
			volRep.Figures[i].Volatile = []string{"m"}
		}
	}
	curVol := writeFixture(t, dir, "vol.json", volRep)
	out.Reset()
	err = run([]string{"-baseline", base, "-current", curVol, "-gate-drift", "big/m"}, &out)
	if err == nil || !strings.Contains(out.String(), "matches no gateable metric") {
		t.Fatalf("volatile-only gate did not fail: err=%v\n%s", err, out.String())
	}
}

func TestParseAllocGates(t *testing.T) {
	if g, err := parseAllocGates(""); err != nil || g != nil {
		t.Fatalf("empty flag: %v %v", g, err)
	}
	g, err := parseAllocGates("megaincast/0.5, bigincast/2")
	if err != nil || len(g) != 2 || g[0].figure != "megaincast" || g[0].limit != 0.5 || g[1].limit != 2 {
		t.Fatalf("parse: %v %v", g, err)
	}
	for _, bad := range []string{"megaincast", "/1", "f/", "f/x", "f/-1", "a/1,,"} {
		if _, err := parseAllocGates(bad); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

// allocReport clones report() and sets one figure's allocation rate.
func allocReport(totalMS float64, figs map[string]float64, fig string, perFrame float64) *benchfmt.Report {
	r := report(totalMS, figs)
	for i := range r.Figures {
		if r.Figures[i].Name == fig {
			r.Figures[i].AllocsPerFrame = perFrame
			r.Figures[i].EventsTotal = 1000
			r.Figures[i].EventsPerSec = 1e6
		}
	}
	return r
}

// TestRunCLIAllocGate: allocs_per_frame is gated against an absolute
// budget per figure, with dead-gate detection like -gate-drift.
func TestRunCLIAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", report(1000, map[string]float64{"mega": 500}))

	// Inside budget: passes, and the allocation line is reported.
	cur := writeFixture(t, dir, "ok.json", allocReport(1000, map[string]float64{"mega": 500}, "mega", 0.2))
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur, "-gate-allocs", "mega/0.5"}, &out); err != nil {
		t.Fatalf("in-budget allocs failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs: mega 0.200 per frame") {
		t.Fatalf("allocation line not reported:\n%s", out.String())
	}

	// Over budget: fails.
	cur = writeFixture(t, dir, "hot.json", allocReport(1000, map[string]float64{"mega": 500}, "mega", 3.5))
	out.Reset()
	err := run([]string{"-baseline", base, "-current", cur, "-gate-allocs", "mega/0.5"}, &out)
	if err == nil || !strings.Contains(out.String(), "FAIL: figure mega allocates 3.500 per frame") {
		t.Fatalf("allocation gate did not fire: err=%v\n%s", err, out.String())
	}

	// Exactly at the budget: passes (gate is strict >).
	cur = writeFixture(t, dir, "edge.json", allocReport(1000, map[string]float64{"mega": 500}, "mega", 0.5))
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-gate-allocs", "mega/0.5"}, &out); err != nil {
		t.Fatalf("at-budget allocs failed: %v\n%s", err, out.String())
	}

	// A gate naming a figure absent from the current report is dead and
	// must fail.
	out.Reset()
	err = run([]string{"-baseline", base, "-current", cur, "-gate-allocs", "gone/0.5"}, &out)
	if err == nil || !strings.Contains(out.String(), "matches no figure") {
		t.Fatalf("dead alloc gate did not fail: err=%v\n%s", err, out.String())
	}

	// Malformed flag: rejected.
	if err := run([]string{"-baseline", base, "-current", cur, "-gate-allocs", "nonsense"}, &out); err == nil {
		t.Fatal("malformed -gate-allocs accepted")
	}
}
