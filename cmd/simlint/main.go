// Command simlint runs the determinism-and-safety analyzer bank
// (internal/analysis) over Go package patterns and fails on any
// unsuppressed finding. It is the mechanical enforcement of the
// simulator's byte-identity contract: run-to-run, machine-to-machine and
// across -sim-workers settings, a figure row must be a pure function of
// its trial seed.
//
// Usage:
//
//	go run ./cmd/simlint ./...          # lint the whole tree (CI mode)
//	go run ./cmd/simlint -list          # show registered analyzers
//	go run ./cmd/simlint -C dir ./...   # lint another module
//
// Findings print as file:line:col: message (analyzer). A finding is
// waived only by a reasoned suppression comment on (or directly above)
// the offending line:
//
//	//simlint:<analyzer> <reason>
//
// Reasonless suppressions, and suppressions naming an unknown analyzer,
// are findings themselves. Exit status: 0 clean, 1 findings, 2 errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/daiet/daiet/internal/analysis"
	"github.com/daiet/daiet/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// analyzers is the bank this driver wires in; it must cover the full
// registry (cmd/simlint's wiring test asserts it).
func analyzers() []*framework.Analyzer {
	return analysis.Analyzers()
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "print registered analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bank := analyzers()
	if *list {
		for _, a := range bank {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.ListPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "simlint: %v\n", err)
		return 2
	}
	known := map[string]bool{}
	for _, name := range analysis.Names() {
		known[name] = true
	}
	cwd, _ := os.Getwd()
	loader := framework.NewLoader()
	findings := 0
	for _, lp := range pkgs {
		units, err := loader.LoadListed(lp, true)
		if err != nil {
			fmt.Fprintf(errw, "simlint: %v\n", err)
			return 2
		}
		for _, unit := range units {
			diags, err := framework.RunAnalyzers(unit, bank, known)
			if err != nil {
				fmt.Fprintf(errw, "simlint: %v\n", err)
				return 2
			}
			for _, d := range diags {
				pos := d.Position
				if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
					pos.Filename = rel
				}
				fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n",
					pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
			}
			findings += len(diags)
		}
	}
	if findings > 0 {
		fmt.Fprintf(errw, "simlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
