package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/analysis"
)

// TestDriverWiresEveryRegisteredAnalyzer asserts cmd/simlint runs the full
// registry: every analysis.Names() entry appears in -list output, and
// nothing else does.
func TestDriverWiresEveryRegisteredAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	names := analysis.Names()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d analyzers, registry has %d:\n%s",
			len(lines), len(names), out.String())
	}
	for _, name := range names {
		found := false
		for _, line := range lines {
			if strings.HasPrefix(line, name+" ") || strings.TrimSpace(line) == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registered analyzer %q missing from -list output:\n%s", name, out.String())
		}
	}
}

// writeTempModule lays out a self-contained module and returns its root.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const tmpGoMod = "module tmpmod\n\ngo 1.24\n"

// TestDriverFailsOnReintroducedWallclock is the acceptance check from the
// issue: putting a bare time.Now() back into an internal/netsim package
// must fail the lint run — and a reasoned suppression must clear it.
func TestDriverFailsOnReintroducedWallclock(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"internal/netsim/clock.go": "package netsim\n\n" +
			"import \"time\"\n\n" +
			"func leak() time.Time { return time.Now() }\n",
	})
	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("want exit 1 on wallclock violation, got %d\nout: %s\nerr: %s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "wallclock") || !strings.Contains(out.String(), "time.Now") {
		t.Fatalf("finding not attributed to wallclock:\n%s", out.String())
	}

	suppressed := writeTempModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"internal/netsim/clock.go": "package netsim\n\n" +
			"import \"time\"\n\n" +
			"func leak() time.Time {\n" +
			"\treturn time.Now() //simlint:wallclock declared-volatile measurement in this fixture\n" +
			"}\n",
	})
	out.Reset()
	errw.Reset()
	if code := run([]string{"-C", suppressed, "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 with reasoned suppression, got %d\nout: %s\nerr: %s",
			code, out.String(), errw.String())
	}
}

// TestDriverFlagsBareSuppression: a reasonless waiver is itself a finding,
// so the violation it annotates still fails the run.
func TestDriverFlagsBareSuppression(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"internal/netsim/clock.go": "package netsim\n\n" +
			"import \"time\"\n\n" +
			"func leak() time.Time {\n" +
			"\treturn time.Now() //simlint:wallclock\n" +
			"}\n",
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 1 {
		t.Fatalf("want exit 1, got %d\nout: %s\nerr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "suppression without a reason") {
		t.Fatalf("missing reasonless-suppression finding:\n%s", out.String())
	}
}

// TestDriverCleanModuleExitsZero: nothing to report, exit 0, no output.
func TestDriverCleanModuleExitsZero(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod": tmpGoMod,
		"internal/netsim/clean.go": "package netsim\n\n" +
			"func fine() int { return 1 }\n",
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 on clean module, got %d\nout: %s\nerr: %s",
			code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("want no findings, got:\n%s", out.String())
	}
}
