package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/telemetry"
)

func sampleTimeline() *telemetry.Timeline {
	return &telemetry.Timeline{
		Cadence: 50_000,
		Records: []telemetry.Record{
			{At: 0, Origin: 0, Seq: 1, Kind: telemetry.KindControl, V0: 3, V1: 120},
			{At: 50_000, Origin: 1, Seq: 1, Kind: telemetry.KindPool, Node: 1, V0: 4096, V1: 8192, V2: 4096},
			{At: 50_000, Origin: 1, Seq: 2, Kind: telemetry.KindClass, Node: 1, K: 1, V0: 512, V1: 512, V3: 2048},
			{At: 50_000, Origin: 1, Seq: 3, Kind: telemetry.KindPort, Node: 1, K: 0, V0: 1500, V1: 10, V3: 10},
			{At: 50_000, Origin: 1, Seq: 4, Kind: telemetry.KindTree, Node: 1, K: 7, V0: 12, V3: 4},
			{At: 60_000, Origin: 1<<32 | 1, Seq: 1, Kind: telemetry.KindHop, Node: 1, K: 1,
				V0: 2, V1: 0, V2: 4096, V3: 512, V4: int64(netsim.FrameDropPool)},
			{At: 70_000, Origin: 0, Seq: 2, Kind: telemetry.KindMonitor, Node: 4, V0: 5, Note: "link-flapped"},
		},
		Engine: []telemetry.EngineSample{{At: 70_000, Domains: 2, FrameLive: 3, FramePeak: 9,
			Barriers: 11, Windows: 18, IdleWindows: 2, MeanHorizon: 900}},
	}
}

func TestChromeTraceRendersEveryKind(t *testing.T) {
	tl := sampleTimeline()
	blob, err := chromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byPhase := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		byPhase[ev["ph"].(string)]++
		names[ev["name"].(string)] = true
	}
	// 5 counter records + 1 engine sample, 2 instants (hop + monitor),
	// 2 process_name metadata rows (node 1, fabric control).
	if byPhase["C"] != 6 || byPhase["i"] != 2 || byPhase["M"] != 2 {
		t.Fatalf("phase census = %v, want C:6 i:2 M:2", byPhase)
	}
	for _, want := range []string{"pool", "class 1", "port 0", "tree 7", "events", "engine",
		"hop drop-pool", "link-flapped"} {
		if !names[want] {
			t.Fatalf("missing event %q in %v", want, names)
		}
	}
	// Virtual nanoseconds map to trace microseconds.
	if ts := doc.TraceEvents[len(doc.TraceEvents)-1]["ts"].(float64); ts != 70 {
		t.Fatalf("engine sample ts = %v µs, want 70", ts)
	}
	// Deterministic rendering: same input, same bytes.
	again, err := chromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("chromeTrace is not deterministic")
	}
}

func TestCSVRoundTripThroughTimelineFormat(t *testing.T) {
	// Render the sample through the on-disk timeline format first, exactly
	// like the daiet-bench -telemetry → daiet-trace pipeline.
	tl := sampleTimeline()
	dir := t.TempDir()
	path := filepath.Join(dir, "tl.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	parsed, err := telemetry.ReadTimeline(in)
	if err != nil {
		t.Fatal(err)
	}

	out, err := os.Create(filepath.Join(dir, "tl.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(out, parsed); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "tl.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 1+len(tl.Records) {
		t.Fatalf("csv has %d lines, want header + %d records", len(lines), len(tl.Records))
	}
	if lines[0] != "at_ns,origin,seq,kind,node,k,v0,v1,v2,v3,v4,note" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if want := "60000,4294967297,1,hop,1,1,2,0,4096,512,2,"; lines[6] != want {
		t.Fatalf("hop row = %q, want %q", lines[6], want)
	}
	if !strings.HasSuffix(lines[7], "link-flapped") {
		t.Fatalf("monitor row lost its note: %q", lines[7])
	}
}
