// daiet-trace renders a recorded fabric timeline (the daiet-timeline v2
// text format written by daiet-bench -telemetry or telemetry.Timeline's
// WriteTo) into figure-ready forms:
//
//	daiet-trace -in tenants_timeline.txt -json tenants_timeline.json
//	daiet-trace -in tenants_timeline.txt -csv tenants_timeline.csv
//
// -json emits Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev): per-node counter tracks for the pool, class,
// port and tree gauges, instant events for sampled frame hops and
// controller failover observations, and a "fabric control" process for the
// quiescent control-point samples and the cut-dependent engine
// diagnostics. Virtual timestamps map to trace microseconds, so the
// viewer's timeline IS the simulation clock.
//
// -csv emits one flat row per record (at_ns, origin, seq, kind, node, k,
// v0..v4, note) for ad-hoc plotting; the kind documentation in
// internal/telemetry/record.go names each value slot.
//
// Both renderings are deterministic functions of the input bytes: records
// are already in (At, Origin, Seq) order and JSON maps marshal with sorted
// keys, so re-rendering a byte-identical timeline yields byte-identical
// artifacts.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/telemetry"
)

var (
	inPath   = flag.String("in", "", "input timeline (daiet-timeline v2 text, from daiet-bench -telemetry)")
	jsonPath = flag.String("json", "", "write Chrome trace-event JSON to this path")
	csvPath  = flag.String("csv", "", "write flat per-record CSV to this path")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if *inPath == "" {
		return fmt.Errorf("daiet-trace: -in is required")
	}
	if *jsonPath == "" && *csvPath == "" {
		return fmt.Errorf("daiet-trace: nothing to do (want -json and/or -csv)")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	tl, err := telemetry.ReadTimeline(f)
	if err != nil {
		return err
	}
	if *jsonPath != "" {
		blob, err := chromeTrace(tl)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", *jsonPath, len(tl.Records))
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := writeCSV(out, tl); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", *csvPath, len(tl.Records))
	}
	return nil
}

// controlPID is the synthetic process ID grouping fabric-wide records
// (control-point samples, engine diagnostics) apart from the per-node
// tracks, which use pid = node ID + 1 (trace viewers reserve pid 0).
const controlPID = 1 << 30

// traceEvent is one Chrome trace-event object. Counter events ("C") plot
// args as stacked per-(pid, name) tracks; instant events ("i") mark one
// moment; metadata events ("M") name the synthetic processes.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds of virtual time
	PID   uint64         `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace renders the timeline as a Chrome trace-event document.
func chromeTrace(tl *telemetry.Timeline) ([]byte, error) {
	events := make([]traceEvent, 0, len(tl.Records)+len(tl.Engine)+8)
	named := map[uint64]bool{}
	process := func(pid uint64, name string) {
		if !named[pid] {
			named[pid] = true
			events = append(events, traceEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": name},
			})
		}
	}
	process(controlPID, "fabric control")

	for i := range tl.Records {
		r := &tl.Records[i]
		pid := uint64(r.Node) + 1
		ev := traceEvent{TS: float64(r.At) / 1e3, PID: pid, TID: 0}
		switch r.Kind {
		case telemetry.KindPool:
			process(pid, fmt.Sprintf("node %d", r.Node))
			ev.Name, ev.Phase = "pool", "C"
			ev.Args = map[string]any{"used": r.V0, "committed": r.V1, "high_water": r.V2, "drops": r.V3}
		case telemetry.KindClass:
			process(pid, fmt.Sprintf("node %d", r.Node))
			ev.Name, ev.Phase = fmt.Sprintf("class %d", r.K), "C"
			ev.Args = map[string]any{"used": r.V0, "high_water": r.V1, "drops": r.V2, "reserve": r.V3}
		case telemetry.KindPort:
			process(pid, fmt.Sprintf("node %d", r.Node))
			ev.Name, ev.Phase = fmt.Sprintf("port %d", r.K), "C"
			ev.Args = map[string]any{"depth": r.V0, "tx_delta": r.V1, "drop_delta": r.V2, "tx_total": r.V3}
		case telemetry.KindTree:
			process(pid, fmt.Sprintf("node %d", r.Node))
			ev.Name, ev.Phase = fmt.Sprintf("tree %d", r.K), "C"
			ev.Args = map[string]any{"cells": r.V0, "spill": r.V1, "replay": r.V2, "flush_out": r.V3, "root_retx": r.V4}
		case telemetry.KindControl:
			ev.Name, ev.Phase, ev.PID = "events", "C", controlPID
			ev.Args = map[string]any{"pending": r.V0, "processed": r.V1}
		case telemetry.KindMonitor:
			ev.Name, ev.Phase, ev.PID, ev.Scope = r.Note, "i", controlPID, "p"
			ev.Args = map[string]any{"node": r.Node, "peer": r.V0}
		case telemetry.KindHop:
			process(pid, fmt.Sprintf("node %d", r.Node))
			verdict := netsim.FrameVerdict(r.V4).String()
			ev.Name, ev.Phase, ev.TID, ev.Scope = "hop "+verdict, "i", uint64(r.V1)+1, "t"
			ev.Args = map[string]any{
				"class": r.K, "dst": r.V0, "dst_port": r.V1,
				"depth": r.V2, "size": r.V3, "verdict": verdict,
			}
		default:
			return nil, fmt.Errorf("daiet-trace: unrenderable record kind %v", r.Kind)
		}
		events = append(events, ev)
	}
	for _, es := range tl.Engine {
		events = append(events, traceEvent{
			Name: "engine", Phase: "C", TS: float64(es.At) / 1e3, PID: controlPID,
			Args: map[string]any{
				"domains": es.Domains, "frame_live": es.FrameLive, "frame_peak": es.FramePeak,
				"timer_peak": es.TimerPeak, "arena_bytes": es.Bytes, "recuts": es.Recuts,
				"sync_barriers": es.Barriers, "sync_windows": es.Windows,
				"sync_idle_windows": es.IdleWindows, "mean_horizon_ns": int64(es.MeanHorizon),
			},
		})
	}

	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
		"otherData": map[string]any{
			"format":          "daiet-timeline v2",
			"cadence_ns":      int64(tl.Cadence),
			"dropped_records": tl.Dropped,
		},
	}
	blob, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// writeCSV renders the flat per-record table.
func writeCSV(f *os.File, tl *telemetry.Timeline) error {
	w := csv.NewWriter(f)
	if err := w.Write([]string{"at_ns", "origin", "seq", "kind", "node", "k", "v0", "v1", "v2", "v3", "v4", "note"}); err != nil {
		return err
	}
	for i := range tl.Records {
		r := &tl.Records[i]
		row := []string{
			strconv.FormatInt(int64(r.At), 10),
			strconv.FormatUint(r.Origin, 10),
			strconv.FormatUint(r.Seq, 10),
			r.Kind.String(),
			strconv.FormatUint(uint64(r.Node), 10),
			strconv.FormatInt(int64(r.K), 10),
			strconv.FormatInt(r.V0, 10),
			strconv.FormatInt(r.V1, 10),
			strconv.FormatInt(r.V2, 10),
			strconv.FormatInt(r.V3, 10),
			strconv.FormatInt(r.V4, 10),
			r.Note,
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
