// daiet-switch runs a DAIET software switch agent on a real UDP socket —
// the role bmv2 plays in the paper's testbed. Workers and reducers connect
// as UDP peers (registering automatically via the client library or the
// -peer flag), and the agent aggregates DAIET streams inside the same
// metered RMT pipeline the simulator uses.
//
// Usage:
//
//	daiet-switch -listen 0.0.0.0:5201 \
//	  -tree 100:3:sum:16384:100 \
//	  -peer 100=10.0.0.5:7000
//
// Tree spec format: treeID:children:agg:tableSize:nextHopNodeID.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/udprt"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

var aggNames = map[string]core.AggFuncID{
	"sum":   core.AggSum,
	"min":   core.AggMin,
	"max":   core.AggMax,
	"count": core.AggCount,
	"or":    core.AggBitOr,
	"and":   core.AggBitAnd,
}

func parseTree(spec string) (udprt.TreeSpec, error) {
	var t udprt.TreeSpec
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return t, fmt.Errorf("tree spec %q: want treeID:children:agg:tableSize:nextHop", spec)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return t, fmt.Errorf("tree id: %w", err)
	}
	children, err := strconv.Atoi(parts[1])
	if err != nil {
		return t, fmt.Errorf("children: %w", err)
	}
	agg, ok := aggNames[strings.ToLower(parts[2])]
	if !ok {
		return t, fmt.Errorf("unknown aggregation %q", parts[2])
	}
	tableSize, err := strconv.Atoi(parts[3])
	if err != nil {
		return t, fmt.Errorf("table size: %w", err)
	}
	next, err := strconv.ParseUint(parts[4], 10, 32)
	if err != nil {
		return t, fmt.Errorf("next hop: %w", err)
	}
	t = udprt.TreeSpec{
		TreeID: uint32(id), Children: children, Agg: agg,
		TableSize: tableSize, NextHop: uint32(next),
	}
	return t, nil
}

func main() {
	log.SetFlags(0)
	var (
		listen    = flag.String("listen", "127.0.0.1:5201", "UDP address to bind")
		treeSpecs multiFlag
		peerSpecs multiFlag
		statsSec  = flag.Int("stats", 10, "seconds between stats lines (0 disables)")
	)
	flag.Var(&treeSpecs, "tree", "tree spec treeID:children:agg:tableSize:nextHop (repeatable)")
	flag.Var(&peerSpecs, "peer", "static peer nodeID=udpAddr (repeatable)")
	flag.Parse()

	cfg := udprt.AgentConfig{ListenAddr: *listen, Peers: map[uint32]string{}}
	for _, spec := range treeSpecs {
		t, err := parseTree(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Trees = append(cfg.Trees, t)
	}
	for _, spec := range peerSpecs {
		id, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("peer spec %q: want nodeID=addr", spec)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			log.Fatalf("peer id %q: %v", id, err)
		}
		cfg.Peers[uint32(n)] = addr
	}

	agent, err := udprt.NewAgent(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	log.Printf("daiet-switch listening on %s (%d trees configured)", agent.Addr(), len(cfg.Trees))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var tick <-chan time.Time
	if *statsSec > 0 {
		t := time.NewTicker(time.Duration(*statsSec) * time.Second)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			log.Println("shutting down")
			return
		case <-tick:
			for _, spec := range cfg.Trees {
				if st, ok := agent.TreeStats(spec.TreeID); ok {
					log.Printf("tree %d: pairs in=%d stored=%d combined=%d spilled=%d flushed=%d ends in/out=%d/%d",
						spec.TreeID, st.PairsIn, st.PairsStored, st.PairsCombined,
						st.PairsSpilled, st.PairsFlushed, st.EndPacketsIn, st.EndPacketsOut)
				}
			}
		}
	}
}
