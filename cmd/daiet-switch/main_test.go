package main

import (
	"testing"

	"github.com/daiet/daiet/internal/core"
)

func TestParseTree(t *testing.T) {
	spec, err := parseTree("100:3:sum:16384:100")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TreeID != 100 || spec.Children != 3 || spec.Agg != core.AggSum ||
		spec.TableSize != 16384 || spec.NextHop != 100 {
		t.Fatalf("spec %+v", spec)
	}
	if spec, err = parseTree("7:1:MAX:64:9"); err != nil || spec.Agg != core.AggMax {
		t.Fatalf("case-insensitive agg: %+v %v", spec, err)
	}
}

func TestParseTreeErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"1:2:sum:64",         // too few fields
		"x:2:sum:64:1",       // bad id
		"1:x:sum:64:1",       // bad children
		"1:2:median:64:1",    // unknown agg
		"1:2:sum:many:1",     // bad table size
		"1:2:sum:64:x",       // bad next hop
		"1:2:sum:64:1:extra", // too many fields
	} {
		if _, err := parseTree(bad); err == nil {
			t.Fatalf("spec %q must fail", bad)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	_ = m.Set("a")
	_ = m.Set("b")
	if m.String() != "a,b" || len(m) != 2 {
		t.Fatalf("multiflag %v", m)
	}
}
