// Benchmark harness: one testing.B benchmark per figure in the paper's
// evaluation, plus the ablations DESIGN.md calls out and micro-benchmarks
// of the dataplane hot path. Figure benchmarks report their headline
// numbers via b.ReportMetric so `go test -bench` output doubles as a
// results table; cmd/daiet-bench prints the full series.
//
// Benchmarks run scaled-down inputs so `go test -bench=. ./...` completes
// on a laptop; use cmd/daiet-bench -scale to grow them.
package daiet_test

import (
	"fmt"
	"testing"

	daiet "github.com/daiet/daiet"
	"github.com/daiet/daiet/internal/experiments"
)

// BenchmarkFigure1aSGDOverlap regenerates Figure 1(a): SGD tensor-update
// overlap (paper: ~42.5%, band 34-50%).
func BenchmarkFigure1aSGDOverlap(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1a(7, 50)
		if err != nil {
			b.Fatal(err)
		}
		mean = fig.Summary.Mean
	}
	b.ReportMetric(mean, "overlap%")
}

// BenchmarkFigure1bAdamOverlap regenerates Figure 1(b): Adam tensor-update
// overlap (paper: ~66.5%, band 62-72%).
func BenchmarkFigure1bAdamOverlap(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1b(7, 30)
		if err != nil {
			b.Fatal(err)
		}
		mean = fig.Summary.Mean
	}
	b.ReportMetric(mean, "overlap%")
}

// BenchmarkFigure1WorkerSweep regenerates the worker-count side experiment
// (paper: overlap increases from 2 to 5 workers).
func BenchmarkFigure1WorkerSweep(b *testing.B) {
	var at2, at5 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure1WorkerSweep(7, 30, 0)
		if err != nil {
			b.Fatal(err)
		}
		at2, at5 = pts[0].OverlapPct, pts[len(pts)-1].OverlapPct
	}
	b.ReportMetric(at2, "overlap2w%")
	b.ReportMetric(at5, "overlap5w%")
}

// BenchmarkFigure1cGraphReduction regenerates Figure 1(c): per-iteration
// traffic reduction for PageRank / SSSP / WCC (paper band: 0.48-0.93).
func BenchmarkFigure1cGraphReduction(b *testing.B) {
	var pr, wcc float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1c(experiments.Figure1cConfig{Seed: 7, Scale: 13})
		if err != nil {
			b.Fatal(err)
		}
		pr = fig.PageRank.MeanY()
		wcc = fig.WCC.Y[0]
	}
	b.ReportMetric(pr, "pagerank-reduction")
	b.ReportMetric(wcc, "wcc-start-reduction")
}

// BenchmarkFigure3WordCount regenerates Figure 3's four panels (paper:
// 86.9-89.3% data reduction, 83.6% reduce-time reduction, 90.5% packets vs
// the UDP baseline, 42% vs TCP).
func BenchmarkFigure3WordCount(b *testing.B) {
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure3(experiments.Figure3Config{Seed: 1, Scale: 0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DataReduction.Median, "data-red%")
	b.ReportMetric(res.ReduceTimeReduction.Median, "time-red%")
	b.ReportMetric(res.PacketsVsUDP.Median, "pkt-vs-udp%")
	b.ReportMetric(res.PacketsVsTCP.Median, "pkt-vs-tcp%")
}

// BenchmarkAblationRegisterSize sweeps the register table size (paper §5:
// fewer cells mean more unaggregated pairs).
func BenchmarkAblationRegisterSize(b *testing.B) {
	var smallRed, bigRed float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRegisterSize(3, []int{64, 4096}, 0)
		if err != nil {
			b.Fatal(err)
		}
		smallRed, bigRed = pts[0].DataReductionPct, pts[1].DataReductionPct
	}
	b.ReportMetric(smallRed, "red-64cells%")
	b.ReportMetric(bigRed, "red-4096cells%")
}

// BenchmarkAblationSpillover measures the spillover path under a
// collision-heavy configuration (table of 1 cell: everything but one key
// spills; correctness is asserted by the unit tests).
func BenchmarkAblationSpillover(b *testing.B) {
	var spilled uint64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRegisterSize(3, []int{1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		spilled = pts[0].SpilledPairs
	}
	b.ReportMetric(float64(spilled), "spilled-pairs")
}

// BenchmarkAblationPairsPerPacket sweeps the packetization bound (paper:
// 10 pairs from the parse budget).
func BenchmarkAblationPairsPerPacket(b *testing.B) {
	var at2, at10 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationPairsPerPacket(3, []int{2, 10}, 0)
		if err != nil {
			b.Fatal(err)
		}
		at2, at10 = pts[0].PacketReductionPct, pts[1].PacketReductionPct
	}
	b.ReportMetric(at2, "pktred-2pairs%")
	b.ReportMetric(at10, "pktred-10pairs%")
}

// BenchmarkAblationKeyWidth compares 8-byte against 16-byte fixed keys
// (paper §5: fixed 16B keys waste bytes for short words).
func BenchmarkAblationKeyWidth(b *testing.B) {
	var red8, red16 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationKeyWidth(3, []int{8, 16}, 0)
		if err != nil {
			b.Fatal(err)
		}
		red8, red16 = pts[0].DataReductionPct, pts[1].DataReductionPct
	}
	b.ReportMetric(red8, "red-8B-keys%")
	b.ReportMetric(red16, "red-16B-keys%")
}

// BenchmarkAblationWorkerCombiner contrasts worker-level combining with
// in-network aggregation (paper §1's motivating gap).
func BenchmarkAblationWorkerCombiner(b *testing.B) {
	var worker, network float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWorkerCombiner(3)
		if err != nil {
			b.Fatal(err)
		}
		worker, network = res.WorkerLevelReductionPct, res.InNetworkReductionPct
	}
	b.ReportMetric(worker, "worker-level%")
	b.ReportMetric(network, "in-network%")
}

// BenchmarkSwitchPipelinePerPacket measures the simulated dataplane's
// per-packet aggregation cost: one fully loaded DATA packet (10 pairs)
// through parse + tree lookup + Algorithm 1.
func BenchmarkSwitchPipelinePerPacket(b *testing.B) {
	net, err := daiet.NewSingleSwitch(2)
	if err != nil {
		b.Fatal(err)
	}
	hosts := net.Hosts()
	tree, err := net.InstallTree(hosts[1], hosts[:1], daiet.TreeOptions{TableSize: 16384})
	if err != nil {
		b.Fatal(err)
	}
	_ = tree
	s, err := net.NewSender(hosts[0], hosts[1])
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(keys[i%len(keys)], uint32(i)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%10 == 0 { // one full packet per 10 sends
			if err := net.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
}

// BenchmarkEndToEndAggregationRound measures a whole round: 4 workers send
// 100 overlapping keys each, the switch aggregates, flushes, and the
// reducer completes.
func BenchmarkEndToEndAggregationRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := daiet.NewSingleSwitch(5)
		if err != nil {
			b.Fatal(err)
		}
		hosts := net.Hosts()
		tree, err := net.InstallTree(hosts[4], hosts[:4], daiet.TreeOptions{TableSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		col, err := net.NewCollector(hosts[4], daiet.AggSum, tree.RootChildren())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range hosts[:4] {
			s, err := net.NewSender(m, hosts[4])
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 100; k++ {
				if err := s.Send([]byte(fmt.Sprintf("key-%03d", k)), 1); err != nil {
					b.Fatal(err)
				}
			}
			s.End()
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
		if !col.Complete() {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkMultiRackCoreReduction measures the clusters/racks deployment
// extension: traffic removed from leaf-spine core links by hierarchical
// aggregation.
func BenchmarkMultiRackCoreReduction(b *testing.B) {
	var core, edge float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiRack(experiments.MultiRackConfig{Seed: 5, Vocab: 400})
		if err != nil {
			b.Fatal(err)
		}
		core, edge = res.CoreReductionPct, res.EdgeReductionPct
	}
	b.ReportMetric(core, "core-red%")
	b.ReportMetric(edge, "edge-red%")
}
