// Benchmark harness: every figure in the registry as a testing.B
// sub-benchmark, plus micro-benchmarks of the dataplane hot path. Figure
// benchmarks run through the same declarative Spec engine as
// cmd/daiet-bench and report their headline means via b.ReportMetric, so
// `go test -bench` output doubles as a results table; cmd/daiet-bench
// prints the full tables with confidence intervals.
//
// Benchmarks run scaled-down inputs so `go test -bench=. ./...` completes
// on a laptop; use cmd/daiet-bench -scale/-seeds to grow them.
package daiet_test

import (
	"fmt"
	"testing"

	daiet "github.com/daiet/daiet"
	"github.com/daiet/daiet/internal/experiments"
)

// BenchmarkFigures regenerates every registered figure at benchmark scale:
// two seeds per point (enough for a non-degenerate interval) over a
// reduced problem size. One sub-benchmark per registry entry — adding a
// figure file adds its benchmark automatically.
func BenchmarkFigures(b *testing.B) {
	for _, spec := range experiments.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var res *experiments.FigureResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = spec.Execute(experiments.RunConfig{
					Seed:  7,
					Seeds: 2,
					Scale: 0.25,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Surface the first point's metrics as the headline numbers.
			for _, name := range res.MetricNames {
				b.ReportMetric(res.Points[0].Metrics[name].Mean, name)
			}
		})
	}
}

// BenchmarkMultirackParallel is the headline proof of the partitioned
// event engine: one 8-rack WordCount fabric, executed sequentially and
// partitioned across 2 and 4 event-engine domains. The metrics are
// byte-identical at every worker count (asserted by the conformance tests
// in internal/experiments and internal/netsim); wall-clock per op is the
// speedup instrument — on a >= 4-core host the 4-domain run completes the
// same simulation in under half the sequential time.
func BenchmarkMultirackParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var core float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.MultiRack(experiments.MultiRackConfig{
					Seed:         7,
					Leaves:       8,
					Spines:       2,
					HostsPerLeaf: 8,
					Mappers:      48,
					Reducers:     12,
					Vocab:        1200,
					Parallelism:  1, // domains are the parallelism under test
					SimWorkers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				core = res.CoreReductionPct
			}
			b.ReportMetric(core, "core_reduction_pct")
		})
	}
}

// BenchmarkSwitchPipelinePerPacket measures the simulated dataplane's
// per-packet aggregation cost: one fully loaded DATA packet (10 pairs)
// through parse + tree lookup + Algorithm 1.
func BenchmarkSwitchPipelinePerPacket(b *testing.B) {
	net, err := daiet.NewSingleSwitch(2)
	if err != nil {
		b.Fatal(err)
	}
	hosts := net.Hosts()
	tree, err := net.InstallTree(hosts[1], hosts[:1], daiet.TreeOptions{TableSize: 16384})
	if err != nil {
		b.Fatal(err)
	}
	_ = tree
	s, err := net.NewSender(hosts[0], hosts[1])
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(keys[i%len(keys)], uint32(i)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%10 == 0 { // one full packet per 10 sends
			if err := net.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
}

// BenchmarkEndToEndAggregationRound measures a whole round: 4 workers send
// 100 overlapping keys each, the switch aggregates, flushes, and the
// reducer completes.
func BenchmarkEndToEndAggregationRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := daiet.NewSingleSwitch(5)
		if err != nil {
			b.Fatal(err)
		}
		hosts := net.Hosts()
		tree, err := net.InstallTree(hosts[4], hosts[:4], daiet.TreeOptions{TableSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		col, err := net.NewCollector(hosts[4], daiet.AggSum, tree.RootChildren())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range hosts[:4] {
			s, err := net.NewSender(m, hosts[4])
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 100; k++ {
				if err := s.Send([]byte(fmt.Sprintf("key-%03d", k)), 1); err != nil {
					b.Fatal(err)
				}
			}
			s.End()
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
		if !col.Complete() {
			b.Fatal("incomplete")
		}
	}
}
